//! The paper's §4 measurement program: "count up to 1024, cooperatively".
//!
//! Two processes share a counter; a process may increment it only when the
//! counter's parity matches its own. "Because the program does nothing but
//! synchronize, it will exercise the worst-case behavior of all the
//! components of a shared-memory system." Every check that sees an
//! unchanged value is a *loss*; every check that sees a changed value is a
//! *win* — the paper's Loss/Win ratio.
//!
//! Two workload shapes cover all five user protocols:
//!
//! * [`SharedPageCounter`] — one page that both processes map writeable
//!   (protocols 1, 2) or mixed writeable/data-driven (protocol 4);
//! * [`DisjointPageCounter`] — two pages used as one-way links, the write
//!   capability stationary (protocols 3, 3-with-hysteresis, and the final
//!   protocol 5).

use mether_core::{MapMode, PageId, PageLength, View};
use mether_net::SimDuration;
use mether_sim::{DsmOp, Step, StepCtx, Workload};

/// Shared parameters of a counting run.
#[derive(Debug, Clone, Copy)]
pub struct CountingConfig {
    /// Count to this value (the paper's 1024).
    pub target: u32,
    /// How many processes take turns (the counter increments when
    /// `value % processes == parity`). The single-process baseline uses 1.
    pub processes: u32,
    /// CPU cost of one check iteration (the paper's ~50 µs).
    pub spin: SimDuration,
}

impl CountingConfig {
    /// The paper's two-process count-to-1024.
    pub fn paper() -> Self {
        CountingConfig {
            target: 1024,
            processes: 2,
            spin: SimDuration::from_micros(48),
        }
    }

    /// Single-process variant (the 50 ms calibration baseline).
    pub fn single() -> Self {
        CountingConfig {
            target: 1024,
            processes: 1,
            spin: SimDuration::from_micros(48),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Issue the next read of the counter.
    Read,
    /// A read completed; decide.
    Check,
    /// A write completed; for protocols with purge-after-write, purge.
    Wrote,
    /// The purge completed; go back to reading.
    Purged,
    /// Finished.
    Exit,
}

/// Counting over a single shared page (protocols 1, 2, 4).
///
/// * Protocols 1 and 2 map the page writeable on both hosts: every access
///   runs through the consistent copy, which ping-pongs.
/// * Protocol 4 reads through the data-driven short view and writes
///   through the demand-driven consistent short view, purging after each
///   increment.
pub struct SharedPageCounter {
    cfg: CountingConfig,
    parity: u32,
    page: PageId,
    read_view: View,
    read_mode: MapMode,
    write_view: View,
    /// Purge (broadcast) after each increment — protocol 4.
    purge_after_write: bool,
    last_seen: Option<u32>,
    phase: Phase,
    label: String,
}

impl SharedPageCounter {
    /// Protocol 1: increment on the full-size page, both sides writeable.
    pub fn protocol1(cfg: CountingConfig, parity: u32, page: PageId) -> Self {
        Self::new(
            cfg,
            parity,
            page,
            View::full_demand(),
            MapMode::Writeable,
            View::full_demand(),
            false,
            format!("p1-proc{parity}"),
        )
    }

    /// Protocol 2: spin on the short page, both sides writeable.
    pub fn protocol2(cfg: CountingConfig, parity: u32, page: PageId) -> Self {
        Self::new(
            cfg,
            parity,
            page,
            View::short_demand(),
            MapMode::Writeable,
            View::short_demand(),
            false,
            format!("p2-proc{parity}"),
        )
    }

    /// Protocol 4: spin on the data-driven short view, write through the
    /// demand-driven consistent short view, purge after writing.
    pub fn protocol4(cfg: CountingConfig, parity: u32, page: PageId) -> Self {
        Self::new(
            cfg,
            parity,
            page,
            View::short_data(),
            MapMode::ReadOnly,
            View::short_demand(),
            true,
            format!("p4-proc{parity}"),
        )
    }

    /// The local baseline: one or two processes on one host, full page.
    pub fn baseline(cfg: CountingConfig, parity: u32, page: PageId) -> Self {
        Self::new(
            cfg,
            parity,
            page,
            View::full_demand(),
            MapMode::Writeable,
            View::full_demand(),
            false,
            format!("baseline-proc{parity}"),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn new(
        cfg: CountingConfig,
        parity: u32,
        page: PageId,
        read_view: View,
        read_mode: MapMode,
        write_view: View,
        purge_after_write: bool,
        label: String,
    ) -> Self {
        SharedPageCounter {
            cfg,
            parity,
            page,
            read_view,
            read_mode,
            write_view,
            purge_after_write,
            last_seen: None,
            phase: Phase::Read,
            label,
        }
    }

    fn my_turn(&self, v: u32) -> bool {
        v % self.cfg.processes == self.parity
    }
}

impl Workload for SharedPageCounter {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        loop {
            match self.phase {
                Phase::Read => {
                    self.phase = Phase::Check;
                    return Step::Op(DsmOp::Read {
                        page: self.page,
                        view: self.read_view,
                        mode: self.read_mode,
                        offset: 0,
                    });
                }
                Phase::Check => {
                    let v = ctx.value();
                    let changed = self.last_seen != Some(v);
                    if changed {
                        ctx.win();
                    } else {
                        ctx.lose();
                    }
                    self.last_seen = Some(v);
                    if v >= self.cfg.target {
                        self.phase = Phase::Exit;
                        continue;
                    }
                    if self.my_turn(v) {
                        self.phase = Phase::Wrote;
                        ctx.counters.operations += 1;
                        return Step::Op(DsmOp::Write {
                            page: self.page,
                            view: self.write_view,
                            offset: 0,
                            value: v + 1,
                        });
                    }
                    self.phase = Phase::Read;
                    return Step::Compute(self.cfg.spin);
                }
                Phase::Wrote => {
                    if self.purge_after_write {
                        self.phase = Phase::Purged;
                        return Step::Op(DsmOp::Purge {
                            page: self.page,
                            mode: MapMode::Writeable,
                            length: self.write_view.length,
                        });
                    }
                    // The increment iteration costs a full loop body (the
                    // paper's ~50 µs per increment including overhead).
                    self.phase = Phase::Read;
                    return Step::Compute(self.cfg.spin);
                }
                Phase::Purged => {
                    self.phase = Phase::Read;
                    return Step::Compute(self.cfg.spin);
                }
                Phase::Exit => return Step::Done,
            }
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Reader behaviour of the disjoint-page protocols on a loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossPolicy {
    /// Protocol 3: purge the read-only copy and refetch on *every* loss —
    /// the degenerate packet storm.
    PurgeEveryLoss,
    /// Protocol 3 with hysteresis: purge after this many consecutive
    /// losses; otherwise spin on the (possibly stale, snoop-refreshed)
    /// local copy.
    Hysteresis(u64),
    /// Final protocol: one stale check, then purge and block on the
    /// data-driven view until a new version transits the network.
    DataDriven,
}

/// Counting over two pages used as one-way links (protocols 3, 3h, 5).
///
/// Each process holds the consistent copy of its own page permanently
/// ("leaving the write capability stationary") and reads the other's page
/// through a read-only view. After each increment the writer purges its
/// page, broadcasting the new version.
pub struct DisjointPageCounter {
    cfg: CountingConfig,
    parity: u32,
    my_page: PageId,
    other_page: PageId,
    length: PageLength,
    policy: LossPolicy,
    last_seen: u32,
    consecutive_losses: u64,
    phase: DjPhase,
    label: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DjPhase {
    Decide,
    ReadDemand,
    ReadData,
    CheckFrom(DjRead),
    Write(u32),
    PurgeOwn(u32),
    PurgeOther { then_data: bool },
    Exit,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DjRead {
    Demand,
    Data,
}

impl DisjointPageCounter {
    /// Protocol 3: spin on disjoint pages, one read-only, purge every loss.
    pub fn protocol3(cfg: CountingConfig, parity: u32, my: PageId, other: PageId) -> Self {
        Self::new(
            cfg,
            parity,
            my,
            other,
            LossPolicy::PurgeEveryLoss,
            format!("p3-proc{parity}"),
        )
    }

    /// Protocol 3 with hysteresis `h` (the paper tried 100 and 10,000).
    pub fn protocol3_hysteresis(
        cfg: CountingConfig,
        parity: u32,
        my: PageId,
        other: PageId,
        h: u64,
    ) -> Self {
        Self::new(
            cfg,
            parity,
            my,
            other,
            LossPolicy::Hysteresis(h),
            format!("p3h-proc{parity}"),
        )
    }

    /// The final protocol: spin on disjoint pages, one data-driven.
    pub fn protocol5(cfg: CountingConfig, parity: u32, my: PageId, other: PageId) -> Self {
        Self::new(
            cfg,
            parity,
            my,
            other,
            LossPolicy::DataDriven,
            format!("p5-proc{parity}"),
        )
    }

    fn new(
        cfg: CountingConfig,
        parity: u32,
        my_page: PageId,
        other_page: PageId,
        policy: LossPolicy,
        label: String,
    ) -> Self {
        DisjointPageCounter {
            cfg,
            parity,
            my_page,
            other_page,
            length: PageLength::Short,
            policy,
            last_seen: 0,
            consecutive_losses: 0,
            phase: DjPhase::Decide,
            label,
        }
    }

    /// Use full-page views instead of short (the pre-short-page variant).
    #[must_use]
    pub fn with_full_pages(mut self) -> Self {
        self.length = PageLength::Full;
        self
    }

    fn read_view(&self, drive: DjRead) -> View {
        match (self.length, drive) {
            (PageLength::Short, DjRead::Demand) => View::short_demand(),
            (PageLength::Short, DjRead::Data) => View::short_data(),
            (PageLength::Full, DjRead::Demand) => View::full_demand(),
            (PageLength::Full, DjRead::Data) => View::full_data(),
        }
    }

    fn my_turn(&self, v: u32) -> bool {
        v % self.cfg.processes == self.parity
    }
}

impl Workload for DisjointPageCounter {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        loop {
            match self.phase {
                DjPhase::Decide => {
                    // "Deal Me In": each process knows the counter starts
                    // at zero; exactly one side opens with a write, the
                    // other with a read, so the data-driven variant cannot
                    // deadlock at start-up.
                    if self.my_turn(self.last_seen) && self.last_seen < self.cfg.target {
                        self.phase = DjPhase::Write(self.last_seen + 1);
                        continue;
                    }
                    self.phase = DjPhase::ReadDemand;
                    continue;
                }
                DjPhase::ReadDemand => {
                    self.phase = DjPhase::CheckFrom(DjRead::Demand);
                    return Step::Op(DsmOp::Read {
                        page: self.other_page,
                        view: self.read_view(DjRead::Demand),
                        mode: MapMode::ReadOnly,
                        offset: 0,
                    });
                }
                DjPhase::ReadData => {
                    self.phase = DjPhase::CheckFrom(DjRead::Data);
                    return Step::Op(DsmOp::Read {
                        page: self.other_page,
                        view: self.read_view(DjRead::Data),
                        mode: MapMode::ReadOnly,
                        offset: 0,
                    });
                }
                DjPhase::CheckFrom(src) => {
                    let v = ctx.value();
                    if v > self.last_seen {
                        ctx.win();
                        self.last_seen = v;
                        self.consecutive_losses = 0;
                        if v >= self.cfg.target {
                            self.phase = DjPhase::Exit;
                            continue;
                        }
                        self.phase = DjPhase::Decide;
                        continue;
                    }
                    ctx.lose();
                    self.consecutive_losses += 1;
                    match self.policy {
                        LossPolicy::PurgeEveryLoss => {
                            self.phase = DjPhase::PurgeOther { then_data: false };
                            continue;
                        }
                        LossPolicy::Hysteresis(h) => {
                            if self.consecutive_losses.is_multiple_of(h) {
                                self.phase = DjPhase::PurgeOther { then_data: false };
                                continue;
                            }
                            self.phase = DjPhase::ReadDemand;
                            return Step::Compute(self.cfg.spin);
                        }
                        LossPolicy::DataDriven => {
                            // One stale check is fine; then purge and
                            // block on the data-driven view.
                            if src == DjRead::Data && self.consecutive_losses >= 2 {
                                // Already woken by a transit yet stale:
                                // re-block without purging again.
                                self.phase = DjPhase::ReadData;
                                return Step::Compute(self.cfg.spin);
                            }
                            self.phase = DjPhase::PurgeOther { then_data: true };
                            continue;
                        }
                    }
                }
                DjPhase::PurgeOther { then_data } => {
                    self.phase = if then_data {
                        DjPhase::ReadData
                    } else {
                        DjPhase::ReadDemand
                    };
                    return Step::Op(DsmOp::Purge {
                        page: self.other_page,
                        mode: MapMode::ReadOnly,
                        length: self.length,
                    });
                }
                DjPhase::Write(v) => {
                    self.phase = DjPhase::PurgeOwn(v);
                    ctx.counters.operations += 1;
                    return Step::Op(DsmOp::Write {
                        page: self.my_page,
                        view: self.read_view(DjRead::Demand),
                        offset: 0,
                        value: v,
                    });
                }
                DjPhase::PurgeOwn(v) => {
                    self.last_seen = v;
                    self.phase = if v >= self.cfg.target {
                        DjPhase::Exit
                    } else {
                        DjPhase::Decide
                    };
                    return Step::Op(DsmOp::Purge {
                        page: self.my_page,
                        mode: MapMode::Writeable,
                        length: self.length,
                    });
                }
                DjPhase::Exit => return Step::Done,
            }
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mether_net::SimTime;
    use mether_sim::{OpResult, WorkloadCounters};

    fn ctx<'a>(counters: &'a mut WorkloadCounters, last: OpResult) -> StepCtx<'a> {
        StepCtx {
            now: SimTime::ZERO,
            last,
            counters,
        }
    }

    #[test]
    fn p1_first_mover_writes_immediately_after_read() {
        let cfg = CountingConfig {
            target: 4,
            processes: 2,
            spin: SimDuration::from_micros(48),
        };
        let mut w = SharedPageCounter::protocol1(cfg, 0, PageId::new(0));
        let mut c = WorkloadCounters::default();
        // First step: a read.
        match w.step(&mut ctx(&mut c, OpResult::None)) {
            Step::Op(DsmOp::Read { offset: 0, .. }) => {}
            other => panic!("{other:?}"),
        }
        // Sees 0, its turn: writes 1.
        match w.step(&mut ctx(&mut c, OpResult::Value(0))) {
            Step::Op(DsmOp::Write { value: 1, .. }) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(c.wins, 1, "first sight of the counter is a win");
        assert_eq!(c.operations, 1);
    }

    #[test]
    fn p1_not_my_turn_spins() {
        let cfg = CountingConfig {
            target: 4,
            processes: 2,
            spin: SimDuration::from_micros(48),
        };
        let mut w = SharedPageCounter::protocol1(cfg, 1, PageId::new(0));
        let mut c = WorkloadCounters::default();
        let _ = w.step(&mut ctx(&mut c, OpResult::None));
        // Sees 0: not proc 1's turn; spin then read again.
        match w.step(&mut ctx(&mut c, OpResult::Value(0))) {
            Step::Compute(_) => {}
            other => panic!("{other:?}"),
        }
        // Second sight of 0 is a loss.
        let _ = w.step(&mut ctx(&mut c, OpResult::None));
        let _ = w.step(&mut ctx(&mut c, OpResult::Value(0)));
        assert_eq!(c.losses, 1);
    }

    #[test]
    fn p1_terminates_at_target() {
        let cfg = CountingConfig {
            target: 4,
            processes: 2,
            spin: SimDuration::from_micros(48),
        };
        let mut w = SharedPageCounter::protocol1(cfg, 0, PageId::new(0));
        let mut c = WorkloadCounters::default();
        let _ = w.step(&mut ctx(&mut c, OpResult::None));
        match w.step(&mut ctx(&mut c, OpResult::Value(4))) {
            Step::Done => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn p4_purges_after_write() {
        let cfg = CountingConfig::paper();
        let mut w = SharedPageCounter::protocol4(cfg, 0, PageId::new(0));
        let mut c = WorkloadCounters::default();
        let _ = w.step(&mut ctx(&mut c, OpResult::None));
        let _ = w.step(&mut ctx(&mut c, OpResult::Value(0))); // write 1
        match w.step(&mut ctx(&mut c, OpResult::Done)) {
            Step::Op(DsmOp::Purge {
                mode: MapMode::Writeable,
                ..
            }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn p5_writer_opens_with_write_and_purge() {
        let cfg = CountingConfig::paper();
        let mut w = DisjointPageCounter::protocol5(cfg, 0, PageId::new(0), PageId::new(1));
        let mut c = WorkloadCounters::default();
        match w.step(&mut ctx(&mut c, OpResult::None)) {
            Step::Op(DsmOp::Write { value: 1, page, .. }) => assert_eq!(page, PageId::new(0)),
            other => panic!("{other:?}"),
        }
        match w.step(&mut ctx(&mut c, OpResult::Done)) {
            Step::Op(DsmOp::Purge {
                mode: MapMode::Writeable,
                page,
                ..
            }) => {
                assert_eq!(page, PageId::new(0));
            }
            other => panic!("{other:?}"),
        }
        // After the purge completes it reads the *other* page.
        match w.step(&mut ctx(&mut c, OpResult::Done)) {
            Step::Op(DsmOp::Read { page, .. }) => assert_eq!(page, PageId::new(1)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn p5_reader_opens_with_demand_read_then_blocks_on_data_view() {
        let cfg = CountingConfig::paper();
        let mut w = DisjointPageCounter::protocol5(cfg, 1, PageId::new(1), PageId::new(0));
        let mut c = WorkloadCounters::default();
        // Not its turn at 0: demand-read the other's page first ("first
        // checks the inconsistent, short, demand-driven copy").
        match w.step(&mut ctx(&mut c, OpResult::None)) {
            Step::Op(DsmOp::Read { view, .. }) => {
                assert_eq!(view, View::short_demand());
            }
            other => panic!("{other:?}"),
        }
        // Stale value: purge, then switch to the data-driven view.
        match w.step(&mut ctx(&mut c, OpResult::Value(0))) {
            Step::Op(DsmOp::Purge {
                mode: MapMode::ReadOnly,
                ..
            }) => {}
            other => panic!("{other:?}"),
        }
        match w.step(&mut ctx(&mut c, OpResult::Done)) {
            Step::Op(DsmOp::Read { view, .. }) => assert_eq!(view, View::short_data()),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.losses, 1);
    }

    #[test]
    fn p3_purges_on_every_loss() {
        let cfg = CountingConfig::paper();
        let mut w = DisjointPageCounter::protocol3(cfg, 1, PageId::new(1), PageId::new(0))
            .with_full_pages();
        let mut c = WorkloadCounters::default();
        let _ = w.step(&mut ctx(&mut c, OpResult::None)); // demand read
        match w.step(&mut ctx(&mut c, OpResult::Value(0))) {
            Step::Op(DsmOp::Purge {
                mode: MapMode::ReadOnly,
                ..
            }) => {}
            other => panic!("{other:?}"),
        }
        // Immediately refetches (no spin delay) — the storm.
        match w.step(&mut ctx(&mut c, OpResult::Done)) {
            Step::Op(DsmOp::Read { .. }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn p3h_spins_until_hysteresis_threshold() {
        let cfg = CountingConfig::paper();
        let mut w =
            DisjointPageCounter::protocol3_hysteresis(cfg, 1, PageId::new(1), PageId::new(0), 3);
        let mut c = WorkloadCounters::default();
        let _ = w.step(&mut ctx(&mut c, OpResult::None));
        // Losses 1 and 2: spin.
        assert!(matches!(
            w.step(&mut ctx(&mut c, OpResult::Value(0))),
            Step::Compute(_)
        ));
        let _ = w.step(&mut ctx(&mut c, OpResult::None));
        assert!(matches!(
            w.step(&mut ctx(&mut c, OpResult::Value(0))),
            Step::Compute(_)
        ));
        let _ = w.step(&mut ctx(&mut c, OpResult::None));
        // Loss 3: purge.
        assert!(matches!(
            w.step(&mut ctx(&mut c, OpResult::Value(0))),
            Step::Op(DsmOp::Purge { .. })
        ));
        assert_eq!(c.losses, 3);
    }

    #[test]
    fn disjoint_counter_alternates_turns() {
        // Drive both sides by hand to verify the turn logic: values
        // written alternate 1, 2, 3, ...
        let cfg = CountingConfig {
            target: 3,
            processes: 2,
            spin: SimDuration::from_micros(48),
        };
        let mut a = DisjointPageCounter::protocol5(cfg, 0, PageId::new(0), PageId::new(1));
        let mut ca = WorkloadCounters::default();
        match a.step(&mut ctx(&mut ca, OpResult::None)) {
            Step::Op(DsmOp::Write { value: 1, .. }) => {}
            other => panic!("{other:?}"),
        }
        let _ = a.step(&mut ctx(&mut ca, OpResult::Done)); // purge own
        let _ = a.step(&mut ctx(&mut ca, OpResult::Done)); // read other (demand first time)
                                                           // Sees the peer's 2: win, then writes 3.
        match a.step(&mut ctx(&mut ca, OpResult::Value(2))) {
            Step::Op(DsmOp::Write { value: 3, .. }) => {}
            other => panic!("{other:?}"),
        }
        // 3 == target: after purging its own page it exits.
        let _ = a.step(&mut ctx(&mut ca, OpResult::Done)); // purge own
        assert!(matches!(
            a.step(&mut ctx(&mut ca, OpResult::Done)),
            Step::Done
        ));
    }
}
