//! The broadcast-heaviest workload a host can run: write a page, PURGE
//! it (one broadcast), repeat.
//!
//! This is the paper's "publish" idiom reduced to its wire footprint —
//! every cycle puts exactly one `PageData` broadcast on the segment for
//! the other N−1 hosts to snoop. The event-engine acceptance test
//! (`tests/tests/event_engine_regression.rs`) and the
//! `event_queue/broadcast_heap_16` microbench both drive this same
//! workload so the heap-shrink numbers in `BENCH_baseline.json` measure
//! exactly what the test pins.

use mether_core::{MapMode, PageId, PageLength, View};
use mether_net::SimDuration;
use mether_sim::{DsmOp, SimConfig, Simulation, Step, StepCtx, Workload};

/// Writes its page then PURGEs it (one broadcast per cycle), `cycles`
/// times, then exits. [`Publisher::paced`] adds a kernel sleep between
/// cycles, for scenarios that need the publisher alive across a window
/// of sim time (the fabric-failover experiments) rather than blasting
/// as fast as the scheduler allows.
pub struct Publisher {
    page: PageId,
    left: u32,
    value: u32,
    write_next: bool,
    pace: SimDuration,
    rest_next: bool,
}

impl Publisher {
    /// A publisher of `page`, broadcasting `cycles` times as fast as it
    /// is scheduled (the PR 2/PR 3 acceptance workload — byte-identical
    /// to always: no sleep steps are ever emitted at zero pace).
    pub fn new(page: PageId, cycles: u32) -> Self {
        Self::paced(page, cycles, SimDuration::ZERO)
    }

    /// A publisher sleeping `pace` between broadcast cycles. The final
    /// value written is `cycles` — scenario code can wait for readers
    /// to observe it.
    pub fn paced(page: PageId, cycles: u32, pace: SimDuration) -> Self {
        Publisher {
            page,
            left: cycles,
            value: 0,
            write_next: true,
            pace,
            rest_next: false,
        }
    }
}

impl Workload for Publisher {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Step {
        if self.rest_next {
            self.rest_next = false;
            return Step::Sleep(self.pace);
        }
        if self.left == 0 {
            return Step::Done;
        }
        if self.write_next {
            self.write_next = false;
            self.value += 1;
            Step::Op(DsmOp::Write {
                page: self.page,
                view: View::short_demand(),
                offset: 0,
                value: self.value,
            })
        } else {
            self.write_next = true;
            self.left -= 1;
            // Pace between cycles (never after the last: the run ends
            // when the last purge lands, not a sleep later).
            self.rest_next = self.pace > SimDuration::ZERO && self.left > 0;
            Step::Op(DsmOp::Purge {
                page: self.page,
                mode: MapMode::Writeable,
                length: PageLength::Short,
            })
        }
    }

    fn label(&self) -> &str {
        "publisher"
    }
}

/// A paper-testbed deployment of `hosts` workstations with one
/// [`Publisher`] of `cycles` broadcasts on host 0 — the shared
/// broadcast-heavy harness behind the event-queue bench and its
/// acceptance test. The caller picks the delivery mode and runs it.
pub fn build_publisher_sim(hosts: usize, cycles: u32) -> Simulation {
    let mut sim = Simulation::new(SimConfig::paper(hosts));
    let page = PageId::new(0);
    sim.create_owned(0, page);
    sim.add_process(0, Box::new(Publisher::new(page, cycles)));
    sim
}
