//! Protocol descriptors and the harness that runs each paper figure.
//!
//! [`Protocol`] enumerates the experiments of §4 (Figures 4–9) plus the
//! two local calibration baselines. [`run_counting`] wires the right
//! workloads, pages, and hosts into a [`Simulation`] and returns the
//! paper-shaped metrics table.

use crate::counting::{CountingConfig, DisjointPageCounter, SharedPageCounter};
use mether_core::PageId;
use mether_net::SimDuration;
use mether_sim::{ProtocolMetrics, RunLimits, SimConfig, Simulation};

/// One §4 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Calibration: one process counting alone on one host (~50 ms).
    BaselineSingle,
    /// Calibration: two processes on one host (81 s wall, 37 s CPU).
    BaselineLocal,
    /// Figure 4 — increment on the full-size page.
    P1,
    /// Figure 5 — spin on the short page.
    P2,
    /// Figure 6 — spin on disjoint pages, one read-only (degenerates).
    P3,
    /// Figure 7 — protocol 3 with purge-after-N-losses hysteresis.
    P3Hysteresis(u64),
    /// Figure 8 — spin on the short page, data driven.
    P4,
    /// Figure 9 — the final protocol: disjoint pages, one data driven.
    P5,
}

impl Protocol {
    /// Display label matching the paper's figure captions.
    pub fn label(&self) -> String {
        match self {
            Protocol::BaselineSingle => "baseline: one process, one host".into(),
            Protocol::BaselineLocal => "baseline: two processes, one host".into(),
            Protocol::P1 => "protocol 1: increment on full-size page (Figure 4)".into(),
            Protocol::P2 => "protocol 2: spin on short page (Figure 5)".into(),
            Protocol::P3 => "protocol 3: spin on disjoint pages, one read-only (Figure 6)".into(),
            Protocol::P3Hysteresis(h) => {
                format!("protocol 3 with hysteresis {h} (Figure 7)")
            }
            Protocol::P4 => "protocol 4: spin on short page, data driven (Figure 8)".into(),
            Protocol::P5 => {
                "final protocol: spin on disjoint pages, one data driven (Figure 9)".into()
            }
        }
    }

    /// The paper's "Space" row: pages of Mether address space used.
    pub fn space_pages(&self) -> u32 {
        match self {
            Protocol::P3 | Protocol::P3Hysteresis(_) | Protocol::P5 => 2,
            _ => 1,
        }
    }

    /// All protocols in paper order, with the paper's two hysteresis
    /// settings.
    pub fn paper_sequence() -> Vec<Protocol> {
        vec![
            Protocol::BaselineSingle,
            Protocol::BaselineLocal,
            Protocol::P1,
            Protocol::P2,
            Protocol::P3,
            Protocol::P3Hysteresis(10_000),
            Protocol::P4,
            Protocol::P5,
        ]
    }
}

/// Builds the simulation for `protocol` (hosts, pages, processes) without
/// running it — exposed so benches can time construction separately and
/// tests can poke at the initial state.
pub fn build_counting(protocol: Protocol, cfg: &CountingConfig, sim_cfg: SimConfig) -> Simulation {
    let page0 = PageId::new(0);
    let page1 = PageId::new(1);
    match protocol {
        Protocol::BaselineSingle => {
            let mut sim = Simulation::new(SimConfig {
                hosts: 1,
                ..sim_cfg
            });
            sim.create_owned(0, page0);
            let single = CountingConfig {
                processes: 1,
                ..*cfg
            };
            sim.add_process(0, Box::new(SharedPageCounter::baseline(single, 0, page0)));
            sim
        }
        Protocol::BaselineLocal => {
            let mut sim = Simulation::new(SimConfig {
                hosts: 1,
                ..sim_cfg
            });
            sim.create_owned(0, page0);
            sim.add_process(0, Box::new(SharedPageCounter::baseline(*cfg, 0, page0)));
            sim.add_process(0, Box::new(SharedPageCounter::baseline(*cfg, 1, page0)));
            sim
        }
        Protocol::P1 => {
            let mut sim = Simulation::new(SimConfig {
                hosts: 2,
                ..sim_cfg
            });
            sim.create_owned(0, page0);
            sim.add_process(0, Box::new(SharedPageCounter::protocol1(*cfg, 0, page0)));
            sim.add_process(1, Box::new(SharedPageCounter::protocol1(*cfg, 1, page0)));
            sim
        }
        Protocol::P2 => {
            let mut sim = Simulation::new(SimConfig {
                hosts: 2,
                ..sim_cfg
            });
            sim.create_owned(0, page0);
            sim.add_process(0, Box::new(SharedPageCounter::protocol2(*cfg, 0, page0)));
            sim.add_process(1, Box::new(SharedPageCounter::protocol2(*cfg, 1, page0)));
            sim
        }
        Protocol::P3 => {
            let mut sim = Simulation::new(SimConfig {
                hosts: 2,
                ..sim_cfg
            });
            sim.create_owned(0, page0);
            sim.create_owned(1, page1);
            // Protocol 3 predates the realisation that the whole loop must
            // be cheap: readers purge and refetch full pages on every loss.
            sim.add_process(
                0,
                Box::new(DisjointPageCounter::protocol3(*cfg, 0, page0, page1).with_full_pages()),
            );
            sim.add_process(
                1,
                Box::new(DisjointPageCounter::protocol3(*cfg, 1, page1, page0).with_full_pages()),
            );
            sim
        }
        Protocol::P3Hysteresis(h) => {
            let mut sim = Simulation::new(SimConfig {
                hosts: 2,
                ..sim_cfg
            });
            sim.create_owned(0, page0);
            sim.create_owned(1, page1);
            sim.add_process(
                0,
                Box::new(DisjointPageCounter::protocol3_hysteresis(
                    *cfg, 0, page0, page1, h,
                )),
            );
            sim.add_process(
                1,
                Box::new(DisjointPageCounter::protocol3_hysteresis(
                    *cfg, 1, page1, page0, h,
                )),
            );
            sim
        }
        Protocol::P4 => {
            let mut sim = Simulation::new(SimConfig {
                hosts: 2,
                ..sim_cfg
            });
            sim.create_owned(0, page0);
            sim.add_process(0, Box::new(SharedPageCounter::protocol4(*cfg, 0, page0)));
            sim.add_process(1, Box::new(SharedPageCounter::protocol4(*cfg, 1, page0)));
            sim
        }
        Protocol::P5 => {
            let mut sim = Simulation::new(SimConfig {
                hosts: 2,
                ..sim_cfg
            });
            sim.create_owned(0, page0);
            sim.create_owned(1, page1);
            sim.add_process(
                0,
                Box::new(DisjointPageCounter::protocol5(*cfg, 0, page0, page1)),
            );
            sim.add_process(
                1,
                Box::new(DisjointPageCounter::protocol5(*cfg, 1, page1, page0)),
            );
            sim
        }
    }
}

/// Runs one §4 experiment end to end and returns the figure table.
pub fn run_counting(
    protocol: Protocol,
    cfg: &CountingConfig,
    sim_cfg: SimConfig,
    limits: RunLimits,
) -> ProtocolMetrics {
    let mut sim = build_counting(protocol, cfg, sim_cfg);
    let outcome = sim.run(limits);
    sim.metrics(&protocol.label(), outcome.finished, protocol.space_pages())
}

/// Runs a protocol with the paper's parameters and a protocol-appropriate
/// time cap (protocol 3 is cut off rather than waited out).
pub fn run_paper_protocol(protocol: Protocol) -> ProtocolMetrics {
    let cfg = match protocol {
        Protocol::BaselineSingle => CountingConfig::single(),
        _ => CountingConfig::paper(),
    };
    let limits = match protocol {
        // Figure 6 "never finished": protocol 3 is cut off at 150
        // simulated seconds, by which point every other protocol has
        // completed the full count. (Left to run, it takes ~173 s — the
        // worst of all protocols; the paper's total divergence came from
        // UDP drops under the packet storm, which a loss-free closed-loop
        // model bounds. See EXPERIMENTS.md.)
        Protocol::P3 => RunLimits {
            max_sim_time: SimDuration::from_secs(150),
            ..RunLimits::default()
        },
        _ => RunLimits::default(),
    };
    run_counting(protocol, &cfg, SimConfig::paper(2), limits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_reference_figures() {
        assert!(Protocol::P1.label().contains("Figure 4"));
        assert!(Protocol::P5.label().contains("Figure 9"));
        assert!(Protocol::P3Hysteresis(100).label().contains("100"));
    }

    #[test]
    fn space_rows_match_paper() {
        assert_eq!(Protocol::P2.space_pages(), 1);
        assert_eq!(Protocol::P4.space_pages(), 1);
        assert_eq!(Protocol::P3Hysteresis(100).space_pages(), 2);
        assert_eq!(Protocol::P5.space_pages(), 2);
    }

    #[test]
    fn baseline_single_runs_in_about_50_ms() {
        let m = run_paper_protocol(Protocol::BaselineSingle);
        assert!(m.finished);
        let ms = m.wall.as_millis_f64();
        assert!(
            (30.0..90.0).contains(&ms),
            "single-process baseline took {ms} ms"
        );
        assert_eq!(m.additions, 1024);
    }

    #[test]
    fn p5_completes_quickly() {
        let m = run_paper_protocol(Protocol::P5);
        assert!(m.finished, "{m}");
        assert_eq!(m.additions, 1024);
        // One data packet per addition, essentially no requests.
        assert!(
            m.net.requests <= 8,
            "final protocol sends ~no requests: {}",
            m.net.requests
        );
    }
}
