//! Ablation experiments for the design decisions DESIGN.md calls out.
//!
//! Each ablation removes or varies one mechanism the paper credits for
//! its results and re-runs the §4 counting experiment, showing what that
//! mechanism buys:
//!
//! 1. **update-carrying purge vs write-invalidate** — already an
//!    experiment in the paper itself: protocol 5 (purge broadcasts data)
//!    vs protocol 3 with hysteresis (reader invalidates and refetches).
//!    [`run_purge_vs_invalidate`] packages the pair.
//! 2. **snoopy refresh** — [`run_snoop_ablation`] disables background
//!    installs; spinning readers stop seeing updates for free.
//! 3. **short-page size** — [`run_short_size_sweep`] sweeps the short
//!    page through {32, 128, 512, 1024, 4096} bytes, testing the paper's
//!    conjecture that "we could make the short pages larger with very
//!    little impact on performance; making them smaller would not be
//!    worthwhile".
//! 4. **kernel-resident server** — [`run_kernel_server`] applies the
//!    paper's proposed fix for the end-state bottleneck ("that problem
//!    will be solved by ... a migration of the user level server code to
//!    the kernel") to protocols 1 and 5.

use crate::counting::CountingConfig;
use crate::protocols::{build_counting, Protocol};
use mether_sim::{Calib, ProtocolMetrics, RunLimits, SimConfig};

fn run_with(protocol: Protocol, sim_cfg: SimConfig, limits: RunLimits) -> ProtocolMetrics {
    let cfg = CountingConfig::paper();
    let mut sim = build_counting(protocol, &cfg, sim_cfg);
    let outcome = sim.run(limits);
    sim.metrics(&protocol.label(), outcome.finished, protocol.space_pages())
}

/// Ablation 1: the final protocol (purge carries data) vs the same
/// structure with invalidate-and-refetch readers. Returns `(p5, p3h)`.
pub fn run_purge_vs_invalidate() -> (ProtocolMetrics, ProtocolMetrics) {
    let p5 = run_with(Protocol::P5, SimConfig::paper(2), RunLimits::default());
    let p3h = run_with(
        Protocol::P3Hysteresis(100),
        SimConfig::paper(2),
        RunLimits::default(),
    );
    (p5, p3h)
}

/// Ablation 2: protocol 3 with hysteresis, with and without snoopy
/// refresh. Without snooping the spinning reader never sees updates for
/// free and every win costs an explicit refetch. Returns
/// `(with_snoop, without_snoop)`.
pub fn run_snoop_ablation(hysteresis: u64) -> (ProtocolMetrics, ProtocolMetrics) {
    let with = run_with(
        Protocol::P3Hysteresis(hysteresis),
        SimConfig::paper(2),
        RunLimits::default(),
    );
    let mut cfg = SimConfig::paper(2);
    cfg.mether = cfg.mether.without_snooping();
    let without = run_with(
        Protocol::P3Hysteresis(hysteresis),
        cfg,
        RunLimits::default(),
    );
    (with, without)
}

/// Ablation 3: protocol 2 with the short page swept through several
/// sizes. Returns `(size, metrics)` pairs.
pub fn run_short_size_sweep(sizes: &[usize]) -> Vec<(usize, ProtocolMetrics)> {
    sizes
        .iter()
        .map(|&len| {
            let mut cfg = SimConfig::paper(2);
            cfg.mether = cfg
                .mether
                .with_short_len(len)
                .expect("sweep sizes are valid short-page lengths");
            (len, run_with(Protocol::P2, cfg, RunLimits::default()))
        })
        .collect()
}

/// Ablation 4: a protocol under the user-level server vs the idealised
/// kernel-resident server. Returns `(user_level, kernel)`.
pub fn run_kernel_server(protocol: Protocol) -> (ProtocolMetrics, ProtocolMetrics) {
    let user = run_with(protocol, SimConfig::paper(2), RunLimits::default());
    let mut cfg = SimConfig::paper(2);
    cfg.calib = Calib::kernel_server();
    let kernel = run_with(protocol, cfg, RunLimits::default());
    (user, kernel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purge_carrying_data_beats_invalidate() {
        let (p5, p3h) = run_purge_vs_invalidate();
        assert!(p5.finished && p3h.finished);
        assert!(
            p5.wall < p3h.wall,
            "update-carrying purge should win: {} vs {}",
            p5.wall,
            p3h.wall
        );
        assert!(p5.net.packets < p3h.net.packets);
    }

    #[test]
    fn snooping_pays_for_itself() {
        // With a high hysteresis the reader leans entirely on snoopy
        // refresh: updates land in its copy while it spins. Ablating the
        // snoop makes every win cost a full 10,000-loss spin plus an
        // explicit refetch — an order of magnitude in wall time.
        let (with, without) = run_snoop_ablation(10_000);
        assert!(with.finished);
        assert!(
            without.wall.as_secs_f64() > with.wall.as_secs_f64() * 5.0,
            "no-snoop {} vs snoop {}",
            without.wall,
            with.wall
        );
        assert!(without.net.packets > with.net.packets);
        assert!(without.loss_win_ratio() > with.loss_win_ratio());
    }

    #[test]
    fn short_page_sweep_confirms_paper_conjecture() {
        // "We could make the short pages larger with very little impact
        // on performance": 32 → 1024 bytes should change wall time by
        // well under 2x, while 8192 (the full page) is protocol 1
        // territory.
        let sweep = run_short_size_sweep(&[32, 1024]);
        let w32 = sweep[0].1.wall.as_secs_f64();
        let w1024 = sweep[1].1.wall.as_secs_f64();
        assert!(sweep.iter().all(|(_, m)| m.finished));
        assert!(
            w1024 / w32 < 1.5,
            "short page 32→1024 bytes should barely matter: {w32} vs {w1024}"
        );
    }

    #[test]
    fn kernel_server_removes_the_bottleneck() {
        // "At this point we have hit a threshold in which the major
        // bottleneck is now the context switches required to receive a
        // new page" — the kernel server removes it.
        let (user, kernel) = run_kernel_server(Protocol::P5);
        assert!(user.finished && kernel.finished);
        assert!(
            kernel.wall.as_secs_f64() < user.wall.as_secs_f64() / 1.8,
            "kernel server should be much faster: {} vs {}",
            kernel.wall,
            user.wall
        );
        assert!(kernel.avg_latency < user.avg_latency);
    }
}
