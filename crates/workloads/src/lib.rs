//! Workloads from the Mether paper: the §4 counting protocols (Figures
//! 4–9), the sparse-solver send/receive application (§3), and the
//! experiment harness that regenerates each figure.
//!
//! The [`segments`] module scales those workloads past one broadcast
//! domain, onto the routed bridge fabric of `mether_net::bridge`. Worker
//! placement there is automatic where it can be: a
//! [`WriteGraph`] records which host writes which page and derives
//! [`mether_core::PageHomePolicy::FromWorkload`] — each page homed on
//! its dominant writer's segment — so the ablation harness
//! ([`sweep_segmented_solver`]) varies segment count × bridge topology
//! (star / chain / balanced tree) without hand-aligning pages and
//! striping. [`PollingReader`] supplies the holder-stable request
//! workload the fabric's holder-directed routing is measured with.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod counting;
pub mod fabric;
pub mod openloop;
pub mod protocols;
pub mod publisher;
pub mod scale;
pub mod segments;
pub mod soak;
pub mod solver;

pub use ablations::{
    run_kernel_server, run_purge_vs_invalidate, run_short_size_sweep, run_snoop_ablation,
};
pub use counting::{CountingConfig, DisjointPageCounter, LossPolicy, SharedPageCounter};
pub use fabric::{
    build_ring_failover, run_ring_failover, sweep_age_horizons, AgePoint, FailoverConfig,
    FailoverReport, PollUntilReader, ReturningReader,
};
pub use openloop::{
    ArrivalProcess, OpenLoopConfig, OpenLoopReport, OpenLoopScenario, OpenLoopShape,
};
pub use protocols::{build_counting, run_counting, run_paper_protocol, Protocol};
pub use publisher::{build_publisher_sim, Publisher};
pub use scale::{
    build_migration_storm, build_scaled_fabric, run_migration_storm, ScaleConfig, StormConfig,
    StormPoint,
};
pub use segments::{
    build_cross_segment_counting, build_fabric_readers, build_segmented_counting_pairs,
    build_segmented_publisher, build_segmented_solver, build_segmented_solver_on, run_segmented,
    sweep_segmented_solver, PollingReader, SegmentedReport, SweepPoint, WriteGraph,
};
pub use soak::{
    base_seed_from_env, run_cross_engine_soak, run_large_faulted_soak, run_large_soak, run_soak,
    runtime_metrics, scenario_count_from_env, state_digest, CrossEngineReport, RuntimeSoakReport,
    SoakMix, SoakReport, SoakScenario, SoakShape,
};
pub use solver::{
    jacobi_step, run_solver_speedup, SolverConfig, SolverWorker, SparseMatrix, SpeedupPoint,
};
