//! Fabric-resilience and interest-aging scenarios: the workloads that
//! exercise the spanning-tree election, failure reconvergence, and the
//! [`AgeHorizon`] knob.
//!
//! * [`run_ring_failover`] — the headline failover experiment: a 4-way
//!   **ring** fabric (one redundant link) under live election, a paced
//!   writer on segment 0, demand-polling readers on every other
//!   segment, and the **elected root bridge killed mid-run**. The
//!   fabric hello-timeouts the corpse, gossips the obituary, re-elects
//!   over the redundant link, and the readers — riding the demand-fault
//!   retry path — finish having observed the writer's final value. The
//!   report carries the measured **reconvergence stall** (sim time from
//!   the `BridgeDown` to the first cross-fabric `PageData` forwarded by
//!   a re-elected device).
//! * [`sweep_age_horizons`] — the aging-policy ablation: a
//!   **returning reader** polls, goes idle for a configurable gap, then
//!   returns and measures how stale its still-mapped copy went
//!   ([`AgePoint::return_lag`], in generations) against how many frames
//!   its segment had to snoop ([`AgePoint::idle_frames`]). Sweeping gap
//!   × [`AgeHorizon`] locates the refetch-vs-filter knee: horizons
//!   longer than the gap keep the copy fresh but feed the idle segment
//!   forever; shorter ones go quiet (cheap) and pay one catch-up fetch
//!   on return.

use crate::publisher::Publisher;
use mether_core::{MapMode, PageId, PageLength, View};
use mether_net::{
    AgeHorizon, ElectionMode, FabricConfig, FabricEvent, RequestRouting, SimDuration,
};
use mether_sim::{
    DsmOp, ProtocolMetrics, RunLimits, RunOutcome, SimConfig, Simulation, Step, StepCtx, Topology,
    Workload,
};

/// A demand-polling reader that runs **until it observes a target
/// value**: each round waits out `spacing`, purges its inconsistent
/// copy, demand-reads the page, and exits once the read returns
/// `target` (recording one win). Bounded by `max_rounds` as a livelock
/// backstop — hitting it records nothing, so a report can tell "saw the
/// final value" from "gave up".
///
/// This is the failover acceptance workload: completion *is* the
/// assertion that every reader observed the writer's final generation,
/// however long the fabric was partitioned in between.
pub struct PollUntilReader {
    page: PageId,
    target: u32,
    spacing: SimDuration,
    offset: SimDuration,
    max_rounds: u32,
    state: PollState,
}

enum PollState {
    Pace,
    Purge,
    Read,
    Check,
}

impl PollUntilReader {
    /// A reader polling `page` every `spacing` (after an initial
    /// `offset`) until it reads `target`, for at most `max_rounds`
    /// rounds.
    pub fn new(
        page: PageId,
        target: u32,
        spacing: SimDuration,
        offset: SimDuration,
        max_rounds: u32,
    ) -> Self {
        PollUntilReader {
            page,
            target,
            spacing,
            offset,
            max_rounds,
            state: PollState::Pace,
        }
    }
}

impl Workload for PollUntilReader {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        match self.state {
            PollState::Pace => {
                if self.max_rounds == 0 {
                    return Step::Done;
                }
                self.max_rounds -= 1;
                self.state = PollState::Purge;
                let pace = self.spacing + std::mem::take(&mut self.offset);
                Step::Compute(pace)
            }
            PollState::Purge => {
                self.state = PollState::Read;
                Step::Op(DsmOp::Purge {
                    page: self.page,
                    mode: MapMode::ReadOnly,
                    length: PageLength::Short,
                })
            }
            PollState::Read => {
                self.state = PollState::Check;
                ctx.counters.operations += 1;
                Step::Op(DsmOp::Read {
                    page: self.page,
                    view: View::short_demand(),
                    mode: MapMode::ReadOnly,
                    offset: 0,
                })
            }
            PollState::Check => {
                if ctx.value() >= self.target {
                    ctx.win();
                    return Step::Done;
                }
                ctx.lose();
                self.state = PollState::Pace;
                self.step(ctx)
            }
        }
    }

    fn label(&self) -> &str {
        "poll-until-reader"
    }
}

/// Configuration of the ring-failover experiment.
#[derive(Debug, Clone)]
pub struct FailoverConfig {
    /// Hosts per segment (4 segments; the acceptance runs 4×8).
    pub hosts_per_segment: usize,
    /// Writer broadcast cycles; the final written value is `writes`.
    pub writes: u32,
    /// Writer sleep between cycles — keeps it publishing across the
    /// failure window.
    pub write_pace: SimDuration,
    /// When (from run start) the elected root bridge dies.
    pub kill_at: SimDuration,
    /// Optionally, when the dead bridge restarts.
    pub revive_at: Option<SimDuration>,
    /// Reader polling cadence.
    pub reader_spacing: SimDuration,
    /// Demand-fault retry interval for every host — the recovery path
    /// that re-sends requests the dead fabric swallowed.
    pub fault_retry: SimDuration,
}

impl FailoverConfig {
    /// The acceptance configuration: 4×8 ring, 24 paced writes, root
    /// killed 100 ms in, 50 ms fault retries.
    pub fn ring_4x8() -> Self {
        FailoverConfig {
            hosts_per_segment: 8,
            writes: 24,
            write_pace: SimDuration::from_millis(10),
            kill_at: SimDuration::from_millis(100),
            revive_at: None,
            reader_spacing: SimDuration::from_millis(8),
            fault_retry: SimDuration::from_millis(50),
        }
    }
}

/// What the failover run measured.
#[derive(Debug, Clone)]
pub struct FailoverReport {
    /// How the run ended (finished ⇔ every reader saw the final value
    /// within its round budget and the writer completed).
    pub outcome: RunOutcome,
    /// The paper-shaped metrics table, fabric events and stall included.
    pub metrics: ProtocolMetrics,
    /// The measured reconvergence stall: `BridgeDown` → first
    /// cross-fabric `PageData` forwarded by a re-elected device.
    pub stall: Option<SimDuration>,
    /// Spanning-tree reconvergences across all devices.
    pub reconvergences: u64,
    /// True iff every reader terminated by observing the final value
    /// *and* ended holding the writer's final page generation.
    pub readers_saw_final: bool,
}

/// Builds the ring-failover deployment: a 4-segment ring fabric (one
/// redundant link) under live election and holder-directed routing,
/// priorities pinned so **device 0 is the elected root**, a paced
/// writer of page 0 on host 0, one [`PollUntilReader`] on the first
/// host of every other segment, and the root's death (plus optional
/// revival) scheduled into the event heap.
pub fn build_ring_failover(cfg: &FailoverConfig) -> Simulation {
    let segments = 4;
    let fabric = FabricConfig::ring(segments)
        .with_election(ElectionMode::live())
        .with_routing(RequestRouting::HolderDirected)
        .with_priorities(vec![0, 1, 2, 3]);
    let mut sim_cfg = SimConfig::paper(segments * cfg.hosts_per_segment);
    sim_cfg.calib = sim_cfg.calib.with_fault_retry(cfg.fault_retry);
    sim_cfg.topology = Topology::fabric(fabric);
    let mut sim = Simulation::new(sim_cfg);
    let page = PageId::new(0);
    sim.create_owned(0, page);
    sim.add_process(
        0,
        Box::new(Publisher::paced(page, cfg.writes, cfg.write_pace)),
    );
    for seg in 1..segments {
        // Stagger the readers so their faults don't piggyback on one
        // another's replies; bound the rounds far above the expected
        // (writer wall + outage) / spacing.
        let offset = SimDuration::from_nanos(cfg.reader_spacing.as_nanos() * (seg as u64 - 1) / 3);
        sim.add_process(
            seg * cfg.hosts_per_segment,
            Box::new(PollUntilReader::new(
                page,
                cfg.writes,
                cfg.reader_spacing,
                offset,
                4000,
            )),
        );
    }
    sim.schedule_fabric_event(cfg.kill_at, FabricEvent::BridgeDown(0));
    if let Some(at) = cfg.revive_at {
        sim.schedule_fabric_event(at, FabricEvent::BridgeUp(0));
    }
    sim
}

/// Runs the ring-failover experiment end to end and assembles the
/// report. See [`FailoverConfig::ring_4x8`] for the acceptance shape.
pub fn run_ring_failover(cfg: &FailoverConfig, limits: RunLimits) -> (Simulation, FailoverReport) {
    let mut sim = build_ring_failover(cfg);
    let outcome = sim.run(limits);
    let metrics = sim.metrics("ring failover", outcome.finished, 1);
    let page = PageId::new(0);
    let mut readers_saw_final = true;
    for seg in 1..4 {
        let h = seg * cfg.hosts_per_segment;
        let host = sim.host(h);
        // One win = the reader's terminating read returned the final
        // value, demand-fetched fresh after its purge; its installed
        // copy must carry it. (The holder's *generation* keeps
        // advancing as it serves straggler polls after the last write,
        // so content — not generation — is the equality that matters.)
        let observed = host
            .table
            .page_buf(page)
            .and_then(|b| b.read_u32(0).ok())
            .unwrap_or(0);
        if host.counters(0).wins != 1 || observed < cfg.writes {
            readers_saw_final = false;
        }
    }
    let report = FailoverReport {
        outcome,
        stall: metrics.reconvergence_stall,
        reconvergences: metrics.fabric_reconvergences,
        readers_saw_final,
        metrics,
    };
    (sim, report)
}

/// A reader that polls, goes idle, and **returns**: `rounds` paced
/// purge+read polls, a `gap` of silence, then the return probe — one
/// read of the still-mapped copy (how stale did it go?) followed by a
/// purge + demand read (the catch-up fetch) — then `rounds` more polls.
///
/// The probe writes its findings into the workload counters:
/// `losses` = the **return lag** in generations (fresh value − stale
/// value: 0 when snooped refreshes kept the idle copy current, large
/// when interest aged out and the refreshes stopped), `wins` = 1 when
/// the lag was ≤ 1 (a fresh return).
pub struct ReturningReader {
    page: PageId,
    rounds: u32,
    gap: SimDuration,
    spacing: SimDuration,
    state: ReturnState,
    left: u32,
    stale_value: u32,
    scored: bool,
}

enum ReturnState {
    PollPace,
    PollPurge,
    PollRead,
    Gap,
    ProbeStale,
    ProbePurge,
    ProbeFresh,
    ReturnPace,
    ReturnPurge,
    ReturnRead,
    Finished,
}

impl ReturningReader {
    /// A reader of `page` polling `rounds` times `spacing` apart on
    /// each side of an idle `gap`.
    pub fn new(page: PageId, rounds: u32, spacing: SimDuration, gap: SimDuration) -> Self {
        ReturningReader {
            page,
            rounds,
            gap,
            spacing,
            state: ReturnState::PollPace,
            left: rounds,
            stale_value: 0,
            scored: false,
        }
    }
}

impl Workload for ReturningReader {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        let purge = |page| {
            Step::Op(DsmOp::Purge {
                page,
                mode: MapMode::ReadOnly,
                length: PageLength::Short,
            })
        };
        let read = |page| {
            Step::Op(DsmOp::Read {
                page,
                view: View::short_demand(),
                mode: MapMode::ReadOnly,
                offset: 0,
            })
        };
        match self.state {
            ReturnState::PollPace => {
                if self.left == 0 {
                    self.state = ReturnState::Gap;
                    return self.step(ctx);
                }
                self.left -= 1;
                self.state = ReturnState::PollPurge;
                Step::Compute(self.spacing)
            }
            ReturnState::PollPurge => {
                self.state = ReturnState::PollRead;
                purge(self.page)
            }
            ReturnState::PollRead => {
                self.state = ReturnState::PollPace;
                ctx.counters.operations += 1;
                read(self.page)
            }
            ReturnState::Gap => {
                self.state = ReturnState::ProbeStale;
                Step::Sleep(self.gap)
            }
            ReturnState::ProbeStale => {
                // The copy was never purged during the gap: this read
                // hits locally, at whatever value the last snooped
                // refresh left behind.
                self.state = ReturnState::ProbePurge;
                read(self.page)
            }
            ReturnState::ProbePurge => {
                self.stale_value = ctx.value();
                self.state = ReturnState::ProbeFresh;
                purge(self.page)
            }
            ReturnState::ProbeFresh => {
                self.state = ReturnState::ReturnPace;
                self.left = self.rounds;
                ctx.counters.operations += 1;
                read(self.page)
            }
            ReturnState::ReturnPace => {
                // First entry after ProbeFresh: score the probe once.
                if !self.scored {
                    self.scored = true;
                    let fresh = ctx.value();
                    let lag = u64::from(fresh.saturating_sub(self.stale_value));
                    ctx.counters.losses += lag;
                    if lag <= 1 {
                        ctx.win();
                    }
                }
                if self.left == 0 {
                    self.state = ReturnState::Finished;
                    return Step::Done;
                }
                self.left -= 1;
                self.state = ReturnState::ReturnPurge;
                Step::Compute(self.spacing)
            }
            ReturnState::ReturnPurge => {
                self.state = ReturnState::ReturnRead;
                purge(self.page)
            }
            ReturnState::ReturnRead => {
                self.state = ReturnState::ReturnPace;
                ctx.counters.operations += 1;
                read(self.page)
            }
            ReturnState::Finished => Step::Done,
        }
    }

    fn label(&self) -> &str {
        "returning-reader"
    }
}

/// One point of the gap × horizon aging sweep.
#[derive(Debug, Clone)]
pub struct AgePoint {
    /// Human-readable point label, e.g. `"gap 600ms, Transits(2)"`.
    pub label: String,
    /// The reader's idle gap.
    pub gap: SimDuration,
    /// The aging horizon swept.
    pub horizon: AgeHorizon,
    /// Frames the returning reader's host snooped across the whole run
    /// — the **filter cost**: sticky interest feeds the idle segment
    /// for the entire gap, aged-out interest goes quiet.
    pub idle_frames: u64,
    /// Generations the still-mapped copy was behind at the return probe
    /// — the **refetch cost**: 0–1 when refreshes kept flowing, ≈ the
    /// writes since eviction when they stopped.
    pub return_lag: u64,
    /// `return_lag ≤ 1`.
    pub fresh_return: bool,
    /// `PageRequest` frames the fabric carried (the catch-up fetch and
    /// every poll-round fault).
    pub requests_crossed: u64,
}

/// Sweeps the returning-reader workload over `gaps` × `horizons` to
/// locate the refetch-vs-filter knee of [`AgeHorizon`] (ROADMAP "Aging
/// policy sweep"): a paced writer of page 0 on segment 0, a
/// [`ReturningReader`] alone on segment 1 (2-segment star,
/// holder-directed requests so the only traffic reaching the reader's
/// segment is interest-driven), one run per point.
///
/// Horizons longer than the gap keep the idle copy fresh
/// (`return_lag ≤ 1`) at the price of snooping every broadcast of the
/// gap; shorter ones go quiet early (small `idle_frames`) and pay the
/// lag back as one catch-up fetch on return.
pub fn sweep_age_horizons(
    gaps: &[SimDuration],
    horizons: &[AgeHorizon],
    limits: RunLimits,
) -> Vec<AgePoint> {
    let mut points = Vec::new();
    let rounds = 4;
    let spacing = SimDuration::from_millis(10);
    let pace = SimDuration::from_millis(20);
    for &gap in gaps {
        for &horizon in horizons {
            // Keep the writer publishing through the reader's whole
            // life: both poll phases, the gap, and generous slack for
            // fault service times.
            let life = gap + SimDuration::from_millis(u64::from(rounds) * 2 * 60 + 500);
            let cycles = (life.as_nanos() / pace.as_nanos()).max(8) as u32;
            let fabric = FabricConfig::star(2)
                .with_routing(RequestRouting::HolderDirected)
                .with_aging(horizon);
            let mut sim = Simulation::new(SimConfig {
                topology: Topology::fabric(fabric),
                ..SimConfig::paper(4)
            });
            let page = PageId::new(0);
            sim.create_owned(0, page);
            sim.add_process(0, Box::new(Publisher::paced(page, cycles, pace)));
            sim.add_process(
                2,
                Box::new(ReturningReader::new(page, rounds, spacing, gap)),
            );
            let outcome = sim.run(limits);
            assert!(outcome.finished, "sweep point did not finish: {outcome:?}");
            let reader = sim.host(2);
            let c = reader.counters(0);
            points.push(AgePoint {
                label: format!("gap {gap}, {horizon:?}"),
                gap,
                horizon,
                idle_frames: reader.frames_heard,
                return_lag: c.losses,
                fresh_return: c.wins == 1,
                requests_crossed: sim
                    .bridge_stats()
                    .expect("segmented topology")
                    .req_forwarded,
            });
        }
    }
    points
}
