//! The §3 application: a multiple-process sparse solver whose only
//! communication primitives are send/receive over Mether pages.
//!
//! The paper ports Bob Lucas's sparse matrix solver by rewriting `csend`
//! and `crecv` over two Mether pages (Figure 3) and reports that "the
//! program shows linear speedup on up to four processors". This module
//! supplies both halves of that claim:
//!
//! * [`SparseMatrix`] / [`jacobi_step`] — a real sparse iterative solver
//!   (Jacobi on a diagonally dominant system) that the runtime example
//!   distributes with `mether-lib`'s channels;
//! * [`SolverWorker`] — the same computation shaped as a simulator
//!   workload: per iteration, each worker computes its row block and
//!   exchanges boundary values with its neighbours using the final
//!   protocol (stationary writer, data-driven reader);
//! * [`run_solver_speedup`] — the speedup experiment over 1–4 hosts.

use crate::counting::CountingConfig;
use mether_core::{MapMode, PageId, PageLength, View};
use mether_net::{SimDuration, SimTime};
use mether_sim::{
    DsmOp, ProtocolMetrics, RunLimits, SimConfig, Simulation, Step, StepCtx, Workload,
};

// ---------------------------------------------------------------------
// The actual numerical kernel (used by the runtime example and to size
// the simulated compute time).
// ---------------------------------------------------------------------

/// A sparse matrix in compressed-row form.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    n: usize,
    /// (column, value) pairs per row, diagonal included.
    rows: Vec<Vec<(usize, f64)>>,
}

impl SparseMatrix {
    /// The 1-D Laplacian-like operator `[-1, 2+eps, -1]` of size `n` —
    /// diagonally dominant, so Jacobi converges.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn laplacian_1d(n: usize) -> SparseMatrix {
        assert!(n > 0, "matrix must be non-empty");
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let mut row = Vec::new();
            if i > 0 {
                row.push((i - 1, -1.0));
            }
            row.push((i, 2.5));
            if i + 1 < n {
                row.push((i + 1, -1.0));
            }
            rows.push(row);
        }
        SparseMatrix { n, rows }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Row `i` as (column, value) pairs.
    pub fn row(&self, i: usize) -> &[(usize, f64)] {
        &self.rows[i]
    }

    /// `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn mul(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        self.rows
            .iter()
            .map(|row| row.iter().map(|&(j, v)| v * x[j]).sum())
            .collect()
    }

    /// Max-norm residual `‖A·x − b‖∞`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn residual(&self, x: &[f64], b: &[f64]) -> f64 {
        self.mul(x)
            .iter()
            .zip(b)
            .map(|(ax, bi)| (ax - bi).abs())
            .fold(0.0, f64::max)
    }
}

/// One Jacobi sweep over rows `lo..hi`: `x'[i] = (b[i] − Σ_{j≠i} a_ij x[j]) / a_ii`.
///
/// Returns the updated block. The caller owns the halo exchange that
/// keeps `x` fresh outside the block — which is exactly the part the
/// paper routes through Mether.
///
/// # Panics
///
/// Panics on dimension mismatch or an out-of-range block.
pub fn jacobi_step(a: &SparseMatrix, b: &[f64], x: &[f64], lo: usize, hi: usize) -> Vec<f64> {
    assert_eq!(x.len(), a.n());
    assert!(lo <= hi && hi <= a.n());
    (lo..hi)
        .map(|i| {
            let mut diag = 0.0;
            let mut off = 0.0;
            for &(j, v) in a.row(i) {
                if j == i {
                    diag = v;
                } else {
                    off += v * x[j];
                }
            }
            (b[i] - off) / diag
        })
        .collect()
}

// ---------------------------------------------------------------------
// The simulator workload and the speedup experiment.
// ---------------------------------------------------------------------

/// Parameters of the simulated solver run.
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// Jacobi iterations to run.
    pub iterations: u32,
    /// Total compute time of one iteration across all workers (divided
    /// evenly). Chosen to mimic a real per-iteration sweep on a Sun-3.
    pub work_per_iteration: SimDuration,
}

impl SolverConfig {
    /// The speedup-experiment default: 40 iterations of 2-second sweeps
    /// (a sparse factorisation sweep is heavyweight — the paper's solver
    /// came from a Cray-2; on a Sun-3 each iteration is seconds of
    /// floating point, which is what lets communication amortise into
    /// "linear speedup on up to four processors").
    pub fn paper() -> SolverConfig {
        SolverConfig {
            iterations: 40,
            work_per_iteration: SimDuration::from_secs(2),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SolverPhase {
    Compute,
    PublishWrite,
    PublishPurge,
    AwaitNeighbour { idx: usize, purged: bool },
    Exit,
}

/// One worker of the distributed solver, as a simulator workload.
///
/// Communication structure per iteration (the Figure 3 pattern, final
/// protocol): write the iteration counter to the worker's own page and
/// purge (one broadcast); then wait until every neighbour's page shows
/// the same iteration, checking the demand view first and sleeping on
/// the data-driven view if stale.
pub struct SolverWorker {
    cfg: SolverConfig,
    my_page: PageId,
    neighbour_pages: Vec<PageId>,
    iteration: u32,
    phase: SolverPhase,
    compute_slice: SimDuration,
    label: String,
}

impl SolverWorker {
    /// Worker `rank` of `world` workers.
    pub fn new(cfg: SolverConfig, rank: usize, world: usize) -> SolverWorker {
        let my_page = PageId::new(rank as u32);
        // 1-D block decomposition: halo exchange with left/right ranks.
        let mut neighbour_pages = Vec::new();
        if rank > 0 {
            neighbour_pages.push(PageId::new(rank as u32 - 1));
        }
        if rank + 1 < world {
            neighbour_pages.push(PageId::new(rank as u32 + 1));
        }
        let compute_slice =
            SimDuration::from_nanos(cfg.work_per_iteration.as_nanos() / world as u64);
        SolverWorker {
            cfg,
            my_page,
            neighbour_pages,
            iteration: 0,
            phase: SolverPhase::Compute,
            compute_slice,
            label: format!("solver-rank{rank}"),
        }
    }
}

impl Workload for SolverWorker {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        loop {
            match self.phase {
                SolverPhase::Compute => {
                    if self.iteration >= self.cfg.iterations {
                        self.phase = SolverPhase::Exit;
                        continue;
                    }
                    self.iteration += 1;
                    self.phase = if self.neighbour_pages.is_empty() {
                        SolverPhase::Compute // single worker: no exchange
                    } else {
                        SolverPhase::PublishWrite
                    };
                    if self.iteration > self.cfg.iterations {
                        self.phase = SolverPhase::Exit;
                        continue;
                    }
                    ctx.counters.operations += 1;
                    return Step::Compute(self.compute_slice);
                }
                SolverPhase::PublishWrite => {
                    self.phase = SolverPhase::PublishPurge;
                    return Step::Op(DsmOp::Write {
                        page: self.my_page,
                        view: View::short_demand(),
                        offset: 0,
                        value: self.iteration,
                    });
                }
                SolverPhase::PublishPurge => {
                    self.phase = SolverPhase::AwaitNeighbour {
                        idx: 0,
                        purged: false,
                    };
                    return Step::Op(DsmOp::Purge {
                        page: self.my_page,
                        mode: MapMode::Writeable,
                        length: PageLength::Short,
                    });
                }
                SolverPhase::AwaitNeighbour { idx, purged } => {
                    if idx >= self.neighbour_pages.len() {
                        self.phase = SolverPhase::Compute;
                        continue;
                    }
                    // A read of the neighbour's counter just completed?
                    if let mether_sim::OpResult::Value(v) = ctx.last {
                        if v >= self.iteration {
                            ctx.win();
                            self.phase = SolverPhase::AwaitNeighbour {
                                idx: idx + 1,
                                purged: false,
                            };
                            continue;
                        }
                        ctx.lose();
                        if !purged {
                            // Stale: purge, then block on the data view.
                            self.phase = SolverPhase::AwaitNeighbour { idx, purged: true };
                            return Step::Op(DsmOp::Purge {
                                page: self.neighbour_pages[idx],
                                mode: MapMode::ReadOnly,
                                length: PageLength::Short,
                            });
                        }
                    }
                    let view = if purged {
                        View::short_data()
                    } else {
                        View::short_demand()
                    };
                    return Step::Op(DsmOp::Read {
                        page: self.neighbour_pages[idx],
                        view,
                        mode: MapMode::ReadOnly,
                        offset: 0,
                    });
                }
                SolverPhase::Exit => return Step::Done,
            }
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// One row of the speedup table.
#[derive(Debug, Clone)]
pub struct SpeedupPoint {
    /// Worker/host count.
    pub workers: usize,
    /// Wall-clock time of the run.
    pub wall: SimDuration,
    /// Speedup over the single-worker run.
    pub speedup: f64,
    /// Parallel efficiency (`speedup / workers`).
    pub efficiency: f64,
    /// Full metrics of the run.
    pub metrics: ProtocolMetrics,
}

/// Runs the solver on each worker count and reports speedups (the §3
/// "linear speedup on up to four processors" claim; the Cray-2 had four
/// processors, hence the 1–4 sweep).
pub fn run_solver_speedup(cfg: SolverConfig, worker_counts: &[usize]) -> Vec<SpeedupPoint> {
    let mut baseline: Option<f64> = None;
    let mut out = Vec::new();
    for &n in worker_counts {
        assert!(n >= 1, "worker counts start at 1");
        let mut sim = Simulation::new(SimConfig::paper(n));
        for rank in 0..n {
            sim.create_owned(rank, PageId::new(rank as u32));
            sim.add_process(rank, Box::new(SolverWorker::new(cfg, rank, n)));
        }
        let outcome = sim.run(RunLimits::default());
        assert!(
            outcome.finished,
            "solver run with {n} workers did not finish"
        );
        let metrics = sim.metrics(&format!("solver, {n} workers"), outcome.finished, n as u32);
        let wall = metrics.wall;
        let base = *baseline.get_or_insert(wall.as_secs_f64());
        let speedup = base / wall.as_secs_f64();
        out.push(SpeedupPoint {
            workers: n,
            wall,
            speedup,
            efficiency: speedup / n as f64,
            metrics,
        });
    }
    out
}

/// Convenience used by tests/benches: the counting config is irrelevant
/// to the solver but part of the shared experiment surface.
pub fn default_counting() -> CountingConfig {
    CountingConfig::paper()
}

/// Current virtual time helper for workloads needing timestamps.
pub fn epoch() -> SimTime {
    SimTime::ZERO
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplacian_structure() {
        let a = SparseMatrix::laplacian_1d(5);
        assert_eq!(a.n(), 5);
        assert_eq!(a.row(0).len(), 2);
        assert_eq!(a.row(2).len(), 3);
        assert_eq!(a.row(4).len(), 2);
    }

    #[test]
    fn jacobi_converges_on_small_system() {
        let n = 32;
        let a = SparseMatrix::laplacian_1d(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.mul(&x_true);
        let mut x = vec![0.0; n];
        for _ in 0..200 {
            x = jacobi_step(&a, &b, &x, 0, n);
        }
        assert!(a.residual(&x, &b) < 1e-6, "residual {}", a.residual(&x, &b));
    }

    #[test]
    fn jacobi_block_equals_full_sweep() {
        let n = 16;
        let a = SparseMatrix::laplacian_1d(n);
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let full = jacobi_step(&a, &b, &x, 0, n);
        let lo = jacobi_step(&a, &b, &x, 0, 8);
        let hi = jacobi_step(&a, &b, &x, 8, 16);
        assert_eq!(&full[..8], &lo[..]);
        assert_eq!(&full[8..], &hi[..]);
    }

    #[test]
    fn solver_speedup_is_near_linear_to_four() {
        let cfg = SolverConfig {
            iterations: 10,
            work_per_iteration: SimDuration::from_secs(2),
        };
        let points = run_solver_speedup(cfg, &[1, 2, 4]);
        assert_eq!(points.len(), 3);
        assert!((points[0].speedup - 1.0).abs() < 1e-9);
        assert!(points[1].speedup > 1.8, "2 workers: {}", points[1].speedup);
        assert!(points[2].speedup > 3.2, "4 workers: {}", points[2].speedup);
        assert!(points[2].efficiency > 0.8);
    }

    #[test]
    fn single_worker_does_no_communication() {
        let cfg = SolverConfig {
            iterations: 5,
            work_per_iteration: SimDuration::from_millis(100),
        };
        let points = run_solver_speedup(cfg, &[1]);
        assert_eq!(points[0].metrics.net.packets, 0);
    }
}
