//! The open-loop traffic engine: deterministic arrival-driven load with
//! fault-latency SLO reporting.
//!
//! A closed-loop workload (every process waits for its last access
//! before issuing the next) measures *throughput degradation* under
//! load; it cannot measure *latency* under load, because a slow server
//! slows the offered rate down with it — the classic coordinated-
//! omission trap. This module drives the simulator open-loop instead:
//! accesses arrive on a seeded stochastic schedule ([`ArrivalProcess`])
//! regardless of what earlier accesses are doing, each demand fault is
//! stamped at issue and at satisfaction, and the latency distribution
//! lands in a fixed-bucket log-scale histogram
//! ([`mether_sim::LatencyHistogram`]) with no hot-path allocation, so
//! runs of millions of accesses report honest p50/p99/p999 tails.
//!
//! **Arrival processes.** [`ArrivalProcess::Poisson`] draws
//! exponentially distributed inter-arrival gaps (`-mean · ln(u)`, the
//! memoryless process the open-systems literature defaults to);
//! [`ArrivalProcess::Uniform`] draws gaps uniformly from a closed range
//! (bounded burstiness, useful for pinning a deterministic bandwidth).
//! Both are pure functions of the per-host seed, so a scenario replays
//! bit-identically — serial or under `ParallelMode::Workers(n)`.
//!
//! **Page popularity.** Target pages are drawn rank-by-rank from a
//! Zipf distribution (`weight(k) ∝ 1/k^s`, precomputed CDF + binary
//! search). Pages are striped across home segments at creation, so a
//! skewed exponent concentrates demand on a few *hot home segments* —
//! exactly the hotspot whose server queue depth the report's
//! per-segment high-water column makes visible, and whose serving path
//! the reply-piggyback optimization ([`mether_sim::Calib::
//! with_reply_piggyback`]) shortens.
//!
//! **SLO report.** [`OpenLoopScenario::run`] returns an
//! [`OpenLoopReport`]: issue/hit/fault counts, fault-latency
//! percentiles (p50/p99/p999/max), serve-time piggyback count, the
//! per-home-segment queue high-water vector, and a deterministic digest
//! ([`mether_sim::Simulation::open_loop_digest`]) the regression tests
//! pin. Display prints one line per column so CI logs read as a table.

use mether_core::{MapMode, PageId, View};
use mether_net::{FabricConfig, RequestRouting, SimDuration, SimTime};
use mether_sim::{
    ArrivalStream, OpenAccess, ParallelMode, RunLimits, RunOutcome, SimConfig, Simulation, Topology,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::Arc;

/// The stochastic inter-arrival schedule of one open-loop stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponentially distributed gaps with this mean.
    Poisson(SimDuration),
    /// Uniform gaps drawn from the closed range `[lo, hi]`.
    Uniform(SimDuration, SimDuration),
}

impl ArrivalProcess {
    /// Draws the next inter-arrival gap.
    fn gap(&self, rng: &mut StdRng) -> SimDuration {
        match *self {
            ArrivalProcess::Poisson(mean) => {
                // gen::<f64>() is in [0, 1); flip it into (0, 1] so the
                // log is finite. Gap = -mean · ln(u).
                let u = 1.0 - rng.gen::<f64>();
                SimDuration::from_nanos((mean.as_nanos() as f64 * -u.ln()) as u64)
            }
            ArrivalProcess::Uniform(lo, hi) => {
                let (lo, hi) = (lo.as_nanos(), hi.as_nanos());
                SimDuration::from_nanos(lo + rng.gen_range(0..hi - lo + 1))
            }
        }
    }

    /// The mean gap (for sizing run budgets).
    fn mean(&self) -> SimDuration {
        match *self {
            ArrivalProcess::Poisson(mean) => mean,
            ArrivalProcess::Uniform(lo, hi) => {
                SimDuration::from_nanos((lo.as_nanos() + hi.as_nanos()) / 2)
            }
        }
    }
}

/// Precomputed Zipf CDF over page popularity ranks: `weight(k) ∝
/// 1/(k+1)^s`. Shared (via [`Arc`]) by every host's stream, computed
/// once per scenario.
#[derive(Debug)]
struct ZipfCdf {
    cdf: Vec<f64>,
}

impl ZipfCdf {
    fn new(ranks: usize, s: f64) -> ZipfCdf {
        assert!(ranks > 0, "zipf over an empty page set");
        let mut cdf: Vec<f64> = Vec::with_capacity(ranks);
        let mut acc = 0.0;
        for k in 0..ranks {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfCdf { cdf }
    }

    /// Draws a rank in `0..ranks` by binary search over the CDF.
    fn draw(&self, rng: &mut StdRng) -> usize {
        let u = rng.gen::<f64>();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Knobs of an open-loop run, independent of topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopConfig {
    /// Seed of the whole run. Per-host streams derive their own RNGs
    /// from it, so one seed pins the entire arrival schedule.
    pub seed: u64,
    /// Accesses each driven host injects before its stream ends.
    pub accesses_per_host: u64,
    /// Inter-arrival schedule (same process on every driven host).
    pub arrivals: ArrivalProcess,
    /// Page universe size; pages are striped across home segments.
    pub pages: u32,
    /// Zipf popularity exponent (`0` = uniform; larger = hotter head).
    pub zipf_exponent: f64,
    /// Fraction of accesses that map writeable (consistency migrates);
    /// the rest are cold reads through the demand-fetch path.
    pub write_fraction: f64,
}

impl OpenLoopConfig {
    /// A seeded config with the defaults the benches and CI SLO jobs
    /// use: 200 accesses per host at a 300 ms mean Poisson pace over 64
    /// pages, Zipf 1.1, 10% writes — hot enough that the skewed head
    /// queues at its home server, cold enough that the queue drains
    /// (the paper-pace server serves one request per ~13 ms, so a 32
    /// host deployment saturates a hot home well before the offered
    /// load looks large).
    pub fn seeded(seed: u64) -> OpenLoopConfig {
        OpenLoopConfig {
            seed,
            accesses_per_host: 200,
            arrivals: ArrivalProcess::Poisson(SimDuration::from_millis(300)),
            pages: 64,
            zipf_exponent: 1.1,
            write_fraction: 0.1,
        }
    }
}

/// One host's arrival stream: seeded RNG, arrival process, shared Zipf
/// CDF. Implements the simulator's [`ArrivalStream`] contract
/// (non-decreasing arrival times, `None` at exhaustion).
struct OpenLoopStream {
    rng: StdRng,
    next_at: SimTime,
    remaining: u64,
    arrivals: ArrivalProcess,
    zipf: Arc<ZipfCdf>,
    pages: u32,
    write_fraction: f64,
}

impl ArrivalStream for OpenLoopStream {
    fn next_access(&mut self) -> Option<OpenAccess> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let at = self.next_at;
        self.next_at = at + self.arrivals.gap(&mut self.rng);
        let page = PageId::new(self.zipf.draw(&mut self.rng) as u32 % self.pages);
        let write = self.rng.gen::<f64>() < self.write_fraction;
        Some(OpenAccess {
            at,
            page,
            view: View::short_demand(),
            mode: if write {
                MapMode::Writeable
            } else {
                MapMode::ReadOnly
            },
            // Reads are cold (stale local copies dropped at issue) so a
            // read-mostly stream keeps exercising the demand-fetch path
            // instead of going all-hits once copies are installed.
            cold: !write,
        })
    }
}

/// The topology classes the SLO jobs pin ceilings for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenLoopShape {
    /// Balanced tree of 4 segments × 8 hosts (32 hosts, 3 devices).
    Tree4x8,
    /// 16×16 segment mesh, 2 hosts per segment (512 hosts, 480
    /// devices), static election.
    Mesh16x16,
}

impl OpenLoopShape {
    fn fabric(self) -> FabricConfig {
        match self {
            OpenLoopShape::Tree4x8 => FabricConfig::tree(4, 2),
            OpenLoopShape::Mesh16x16 => {
                // Holder-directed routing is mandatory at this scale: a
                // flooded request visits all 480 devices, and the 20 ms
                // fault retries of a deep queue re-flood it — the event
                // budget drowns in transit fan-out before the streams
                // finish. Directed requests grow with mesh distance
                // instead.
                FabricConfig::new(mether_core::BridgeTopology::mesh2d(16, 16))
                    .with_routing(RequestRouting::HolderDirected)
            }
        }
    }

    fn hosts_per_segment(self) -> usize {
        match self {
            OpenLoopShape::Tree4x8 => 8,
            OpenLoopShape::Mesh16x16 => 2,
        }
    }

    /// On the tree every host drives a stream; on the mesh one driver
    /// per segment keeps the event volume bounded while traffic still
    /// crosses the whole fabric.
    fn drives(self, host: usize, hps: usize) -> bool {
        match self {
            OpenLoopShape::Tree4x8 => true,
            OpenLoopShape::Mesh16x16 => host % hps == 1,
        }
    }

    fn label(self) -> &'static str {
        match self {
            OpenLoopShape::Tree4x8 => "tree-4x8",
            OpenLoopShape::Mesh16x16 => "mesh-16x16",
        }
    }
}

/// An open-loop deployment: shape × config × serving optimizations.
#[derive(Debug, Clone)]
pub struct OpenLoopScenario {
    /// Topology class.
    pub shape: OpenLoopShape,
    /// Arrival/popularity knobs.
    pub cfg: OpenLoopConfig,
    /// Serve-time reply piggybacking
    /// ([`mether_sim::Calib::with_reply_piggyback`]) on the home
    /// servers — the measured optimization, off by default.
    pub piggyback: bool,
}

impl OpenLoopScenario {
    /// The 4×8 tree scenario: 32 hosts, every one driving a stream, 64
    /// pages striped over 4 home segments. The skewed head lands ~30%
    /// of all demand on one home server (13 ms per serve at paper
    /// pace), which is what builds the queues the serving
    /// optimizations are measured against.
    pub fn tree_4x8(cfg: OpenLoopConfig) -> OpenLoopScenario {
        OpenLoopScenario {
            shape: OpenLoopShape::Tree4x8,
            cfg,
            piggyback: false,
        }
    }

    /// The 16×16 mesh scenario: 256 segments, one driver per segment,
    /// pages striped across all 256 homes, static election (a live
    /// election's control plane would dominate the measurement). The
    /// mesh diameter puts ~30 store-and-forward hops under the worst
    /// request, so its tail is transit-dominated rather than
    /// queue-dominated — the complementary SLO class to the tree.
    pub fn mesh_16x16(mut cfg: OpenLoopConfig) -> OpenLoopScenario {
        // Spread the universe over all 256 homes and slow the per-host
        // pace. The rank-1 Zipf page draws ~18% of ALL demand; at the
        // paper's 13 ms per serve the hot home saturates near 75
        // aggregate req/s, and past saturation the 20 ms fault retries
        // compound the queue without bound. 256 drivers at a 2.5 s mean
        // offer ~100 req/s total, ~19 req/s at the hot home (utilisation
        // ~0.25): loaded enough to queue, far from collapse.
        cfg.pages = cfg.pages.max(256);
        cfg.arrivals = ArrivalProcess::Poisson(SimDuration::from_millis(2_500));
        cfg.accesses_per_host = cfg.accesses_per_host.min(30);
        OpenLoopScenario {
            shape: OpenLoopShape::Mesh16x16,
            cfg,
            piggyback: false,
        }
    }

    /// Turns on serve-time reply piggybacking on every host.
    #[must_use]
    pub fn with_piggyback(mut self) -> OpenLoopScenario {
        self.piggyback = true;
        self
    }

    /// Scenario label for reports: shape plus optimization suffix.
    pub fn label(&self) -> String {
        if self.piggyback {
            format!("{}+piggyback", self.shape.label())
        } else {
            self.shape.label().to_string()
        }
    }

    /// Builds the deployment: fabric, striped pages owned at their home
    /// segment's first host, and one arrival stream per driven host.
    pub fn build(&self) -> Simulation {
        let fabric = self.shape.fabric();
        let segments = fabric.topology.segments();
        let hps = self.shape.hosts_per_segment();
        let mut cfg = SimConfig::paper(segments * hps);
        cfg.mether.num_pages = cfg.mether.num_pages.max(self.cfg.pages);
        cfg.ether.seed = self.cfg.seed;
        // The soak deployments' recovery/mitigation pair: the 20 ms
        // fault retry re-sends requests a converging fabric filtered,
        // and NIC request coalescing keeps those retries from
        // duplicating server work at enqueue time. Serve-time
        // piggybacking (the measured optimization) additionally drops
        // queued duplicates that arrived *during* a serve burst.
        cfg.calib = cfg
            .calib
            .with_fault_retry(SimDuration::from_millis(20))
            .with_request_coalescing();
        if self.piggyback {
            cfg.calib = cfg.calib.with_reply_piggyback();
        }
        cfg.topology = Topology::fabric(fabric);
        let mut sim = Simulation::new(cfg);
        for p in 0..self.cfg.pages {
            // Striped homes: page p belongs to segment p % segments;
            // owning it at the home's first host makes that host the
            // page's initial server.
            let home = (p as usize % segments) * hps;
            sim.create_owned(home, PageId::new(p));
        }
        let zipf = Arc::new(ZipfCdf::new(
            self.cfg.pages as usize,
            self.cfg.zipf_exponent,
        ));
        for host in 0..segments * hps {
            if !self.shape.drives(host, hps) {
                continue;
            }
            // Independent per-host RNG: the multiplicative spread keeps
            // xor-adjacent host indices from producing correlated
            // SplitMix streams.
            let host_seed = self
                .cfg
                .seed
                .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(host as u64 + 1));
            let mut rng = StdRng::seed_from_u64(host_seed);
            let first_gap = self.cfg.arrivals.gap(&mut rng);
            sim.attach_open_loop(
                host,
                Box::new(OpenLoopStream {
                    rng,
                    next_at: SimTime::ZERO + first_gap,
                    remaining: self.cfg.accesses_per_host,
                    arrivals: self.cfg.arrivals,
                    zipf: Arc::clone(&zipf),
                    pages: self.cfg.pages,
                    write_fraction: self.cfg.write_fraction,
                }),
            );
        }
        sim
    }

    /// Run budget: four times the expected stream length plus a flat
    /// drain allowance, far above any healthy run.
    pub fn limits(&self) -> RunLimits {
        let expected = self
            .cfg
            .arrivals
            .mean()
            .saturating_mul(self.cfg.accesses_per_host);
        RunLimits {
            max_sim_time: expected.saturating_mul(4) + SimDuration::from_secs(30),
            max_events: 50_000_000,
        }
    }

    /// Builds and runs the scenario (optionally under
    /// [`ParallelMode::Workers`]), sweeps the invariant observer, and
    /// assembles the SLO report.
    pub fn run(&self, workers: Option<usize>) -> OpenLoopReport {
        let mut sim = self.build();
        if let Some(w) = workers {
            sim.set_parallel_mode(ParallelMode::Workers(w));
        }
        let outcome = sim.run(self.limits());
        sim.check_invariants();
        let hist = sim.open_loop_hist();
        let (mut accesses, mut hits, mut faults, mut piggybacked) = (0u64, 0u64, 0u64, 0u64);
        for h in 0..sim.host_count() {
            let (i, ht, f) = sim.host(h).open_counts();
            accesses += i;
            hits += ht;
            faults += f;
            piggybacked += sim.host(h).requests_piggybacked;
        }
        OpenLoopReport {
            label: self.label(),
            outcome,
            accesses,
            hits,
            faults,
            piggybacked,
            p50: SimDuration::from_nanos(hist.percentile(0.50)),
            p99: SimDuration::from_nanos(hist.percentile(0.99)),
            p999: SimDuration::from_nanos(hist.percentile(0.999)),
            max: SimDuration::from_nanos(hist.max()),
            queue_high_water: sim.server_queue_high_water(),
            digest: sim.open_loop_digest(),
        }
    }
}

/// What one open-loop run measured. Two runs of one scenario (serial or
/// parallel) must produce equal digests and percentiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenLoopReport {
    /// Scenario label ([`OpenLoopScenario::label`]).
    pub label: String,
    /// How the run ended (must finish: arrivals are finite).
    pub outcome: RunOutcome,
    /// Accesses issued across all streams.
    pub accesses: u64,
    /// Accesses satisfied locally (no fault).
    pub hits: u64,
    /// Demand faults stamped into the histogram.
    pub faults: u64,
    /// Queued duplicate requests dropped at serve time
    /// (0 unless the scenario runs with piggybacking).
    pub piggybacked: u64,
    /// Median fault latency.
    pub p50: SimDuration,
    /// 99th-percentile fault latency.
    pub p99: SimDuration,
    /// 99.9th-percentile fault latency (the SLO ceiling CI pins).
    pub p999: SimDuration,
    /// Worst fault latency observed.
    pub max: SimDuration,
    /// Per-home-segment server-queue high-water marks.
    pub queue_high_water: Vec<u64>,
    /// Deterministic digest of the whole run
    /// ([`mether_sim::Simulation::open_loop_digest`]).
    pub digest: u64,
}

impl OpenLoopReport {
    /// The deepest home-segment queue seen, with its segment index.
    pub fn hottest_segment(&self) -> (usize, u64) {
        self.queue_high_water
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, d)| d)
            .unwrap_or((0, 0))
    }
}

impl fmt::Display for OpenLoopReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (seg, depth) = self.hottest_segment();
        writeln!(
            f,
            "{}: finished={} events={} sim-time={}",
            self.label, self.outcome.finished, self.outcome.events, self.outcome.wall
        )?;
        writeln!(
            f,
            "  accesses={} hits={} faults={} piggybacked={}",
            self.accesses, self.hits, self.faults, self.piggybacked
        )?;
        writeln!(
            f,
            "  fault latency p50={} p99={} p999={} max={}",
            self.p50, self.p99, self.p999, self.max
        )?;
        write!(
            f,
            "  queue high-water: hottest segment {seg} depth {depth}; digest={:016x}",
            self.digest
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_cdf_is_monotone_and_normalized() {
        for &(ranks, s) in &[(1usize, 1.0f64), (64, 1.1), (256, 0.8), (10, 0.0)] {
            let z = ZipfCdf::new(ranks, s);
            assert_eq!(z.cdf.len(), ranks);
            assert!(
                z.cdf.windows(2).all(|w| w[0] <= w[1]),
                "ranks={ranks} s={s}"
            );
            assert!(
                (z.cdf[ranks - 1] - 1.0).abs() < 1e-12,
                "ranks={ranks} s={s}"
            );
        }
        // s = 0 is uniform: first rank holds 1/ranks of the mass.
        let uniform = ZipfCdf::new(10, 0.0);
        assert!((uniform.cdf[0] - 0.1).abs() < 1e-12);
        // A skewed exponent concentrates the head.
        let skewed = ZipfCdf::new(10, 1.5);
        assert!(skewed.cdf[0] > 0.3);
    }

    #[test]
    fn zipf_draw_covers_and_skews() {
        let z = ZipfCdf::new(8, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u64; 8];
        for _ in 0..10_000 {
            counts[z.draw(&mut rng)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "some rank never drawn");
        assert!(counts[0] > counts[7] * 4, "head not hot: {counts:?}");
    }

    #[test]
    fn arrival_gaps_are_deterministic_and_sane() {
        for p in [
            ArrivalProcess::Poisson(SimDuration::from_millis(10)),
            ArrivalProcess::Uniform(SimDuration::from_millis(2), SimDuration::from_millis(6)),
        ] {
            let mut a = StdRng::seed_from_u64(99);
            let mut b = StdRng::seed_from_u64(99);
            let mut total = SimDuration::ZERO;
            for _ in 0..1000 {
                let g = p.gap(&mut a);
                assert_eq!(g, p.gap(&mut b));
                if let ArrivalProcess::Uniform(lo, hi) = p {
                    assert!(g >= lo && g <= hi);
                }
                total += g;
            }
            // Sample mean within 20% of the process mean over 1000 draws.
            let mean = p.mean().as_nanos() as f64;
            let sample = total.as_nanos() as f64 / 1000.0;
            assert!((sample - mean).abs() / mean < 0.2, "{p:?}: sample {sample}");
        }
    }

    #[test]
    fn streams_replay_bit_identically() {
        let cfg = OpenLoopConfig::seeded(41);
        let build = || OpenLoopStream {
            rng: StdRng::seed_from_u64(cfg.seed),
            next_at: SimTime::ZERO,
            remaining: 64,
            arrivals: cfg.arrivals,
            zipf: Arc::new(ZipfCdf::new(cfg.pages as usize, cfg.zipf_exponent)),
            pages: cfg.pages,
            write_fraction: cfg.write_fraction,
        };
        let (mut a, mut b) = (build(), build());
        let mut last_at = SimTime::ZERO;
        let mut reads = 0;
        let mut writes = 0;
        loop {
            let (x, y) = (a.next_access(), b.next_access());
            match (x, y) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!(x.at, y.at);
                    assert_eq!(x.page, y.page);
                    assert_eq!(x.mode, y.mode);
                    assert!(x.at >= last_at, "arrival times regressed");
                    last_at = x.at;
                    match x.mode {
                        MapMode::ReadOnly => {
                            assert!(x.cold);
                            reads += 1;
                        }
                        MapMode::Writeable => {
                            assert!(!x.cold);
                            writes += 1;
                        }
                    }
                }
                _ => panic!("streams diverged in length"),
            }
        }
        assert_eq!(reads + writes, 64);
        assert!(
            reads > writes,
            "write_fraction 0.1 produced {writes} writes"
        );
    }
}
