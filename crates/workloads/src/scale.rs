//! Past-the-wall deployments: the workloads that need more than 128
//! hosts, and the belief-churn storm that stresses the fabric's holder
//! tables at scale.
//!
//! Two builders live here:
//!
//! * [`build_scaled_fabric`] — the 1024-host headline deployment
//!   (16 segments × 64 hosts on a fanout-4 bridge tree, see
//!   [`ScaleConfig::fabric_16x64`]). Every segment runs its own set of
//!   §4 P5 counting pairs on pages homed to itself, so the traffic is
//!   segment-local by construction: exactly the deployment the
//!   per-segment event lanes of
//!   [`mether_sim::ParallelMode::Workers`] parallelize, and the
//!   workload behind the `scale/16x64` bench and the Workers-vs-Serial
//!   speedup number in `BENCH_baseline.json`.
//! * [`build_migration_storm`] — the adversarial opposite: P1 counting
//!   pairs *straddling* segment boundaries on a chain fabric, so every
//!   pair's shared page ping-pongs between holders on different
//!   segments for the whole run. Each migration invalidates the holder
//!   beliefs every bridge device keeps (see
//!   [`mether_net::BridgeStats`]), so the belief tables are never at
//!   rest: requests route on a belief when it is fresh
//!   (`belief_hits`), fall back to scoped flooding when it is gone
//!   (`belief_fallback_floods`), and every reply or snooped
//!   `transfer_to` repoints them (`belief_repairs`).
//!   [`run_migration_storm`] samples those counters over a ladder of
//!   time horizons — the reconvergence-under-churn experiment.

use crate::counting::{CountingConfig, DisjointPageCounter, SharedPageCounter};
use crate::segments::WriteGraph;
use mether_core::{PageId, SegmentLayout};
use mether_net::{FabricConfig, SimDuration};
use mether_sim::{RunLimits, SimConfig, Simulation, Topology};

/// Shape of a scaled segment-local deployment.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Bridged segments in the fabric.
    pub segments: usize,
    /// Hosts on every segment.
    pub hosts_per_segment: usize,
    /// P5 counting pairs per segment (each pair occupies two hosts).
    pub pairs_per_segment: usize,
    /// Per-pair counting parameters.
    pub counting: CountingConfig,
}

impl ScaleConfig {
    /// The headline 1024-host deployment: 16 segments × 64 hosts on a
    /// fanout-4 tree, fully occupied — every host runs a counting
    /// party, 32 pairs per segment. Far past the 128-host wall the
    /// u128 recipient mask imposed.
    pub fn fabric_16x64() -> Self {
        ScaleConfig {
            segments: 16,
            hosts_per_segment: 64,
            pairs_per_segment: 32,
            counting: CountingConfig {
                target: 24,
                processes: 2,
                spin: SimDuration::from_micros(48),
            },
        }
    }

    /// A small same-shape deployment for tests and smoke runs.
    pub fn smoke() -> Self {
        ScaleConfig {
            segments: 4,
            hosts_per_segment: 4,
            pairs_per_segment: 2,
            counting: CountingConfig {
                target: 16,
                processes: 2,
                spin: SimDuration::from_micros(48),
            },
        }
    }

    /// Total hosts in the deployment.
    pub fn hosts(&self) -> usize {
        self.segments * self.hosts_per_segment
    }
}

/// The scaled segment-local deployment: on every segment of a fanout-4
/// bridge tree, `pairs_per_segment` P5 counting pairs run on their own
/// disjoint page pairs, homed (via the write graph) to the segment that
/// uses them. No page is ever wanted off its own segment, so beyond the
/// cold-start request floods (the first demand fault per page floods
/// the fabric before any interest is learned) the bridge filter keeps
/// every data frame local and the segments advance independently — the
/// workload the per-segment event lanes speed up.
///
/// Pair `k` of segment `s` occupies hosts `s·hps + 2k` and
/// `s·hps + 2k + 1`; its pages are globally unique
/// (`2·(s·pairs + k)` and the successor).
///
/// # Panics
///
/// Panics if a segment cannot seat its pairs
/// (`2 · pairs_per_segment > hosts_per_segment`) or the layout is
/// zero-sized.
pub fn build_scaled_fabric(cfg: &ScaleConfig) -> Simulation {
    assert!(
        2 * cfg.pairs_per_segment <= cfg.hosts_per_segment,
        "pairs need two hosts each"
    );
    let layout = SegmentLayout::new(cfg.hosts(), cfg.segments).expect("valid scale layout");
    let mut graph = WriteGraph::new();
    let mut placements = Vec::new();
    for seg in 0..cfg.segments {
        for k in 0..cfg.pairs_per_segment {
            let host_a = seg * cfg.hosts_per_segment + 2 * k;
            let host_b = host_a + 1;
            let pair = (seg * cfg.pairs_per_segment + k) as u32;
            let (page_a, page_b) = (PageId::new(2 * pair), PageId::new(2 * pair + 1));
            graph.record(page_a, host_a, u64::from(cfg.counting.target));
            graph.record(page_b, host_b, u64::from(cfg.counting.target));
            placements.push((host_a, host_b, page_a, page_b));
        }
    }
    let fabric = FabricConfig::tree(cfg.segments, 4).with_homes(graph.homes(&layout));
    let mut sim = Simulation::new(SimConfig {
        topology: Topology::fabric(fabric),
        ..SimConfig::paper(cfg.hosts())
    });
    for (host_a, host_b, page_a, page_b) in placements {
        sim.create_owned(host_a, page_a);
        sim.create_owned(host_b, page_b);
        sim.add_process(
            host_a,
            Box::new(DisjointPageCounter::protocol5(
                cfg.counting,
                0,
                page_a,
                page_b,
            )),
        );
        sim.add_process(
            host_b,
            Box::new(DisjointPageCounter::protocol5(
                cfg.counting,
                1,
                page_b,
                page_a,
            )),
        );
    }
    sim
}

/// Shape of the migration storm.
#[derive(Debug, Clone, Copy)]
pub struct StormConfig {
    /// Bridged segments on the chain (one straddling pair per two).
    pub segments: usize,
    /// Hosts on every segment.
    pub hosts_per_segment: usize,
    /// Per-pair counting parameters (P1: both parties write the shared
    /// page, so it migrates on every win).
    pub counting: CountingConfig,
}

impl StormConfig {
    /// The scaled storm: 8 chained segments × 16 hosts, four straddling
    /// P1 pairs ping-ponging their pages across the chain.
    pub fn chain_8x16() -> Self {
        StormConfig {
            segments: 8,
            hosts_per_segment: 16,
            counting: CountingConfig {
                target: 64,
                processes: 2,
                spin: SimDuration::from_micros(48),
            },
        }
    }
}

/// The belief-churn storm: pair `p` puts one P1 party on the first host
/// of segment `2p` and the other on the first host of segment `2p + 1`
/// of a *chain* fabric, sharing writeable page `p` homed to segment
/// `2p`. Every win migrates the page to the other side of a bridge, so
/// the holder beliefs along the chain chase a target that never stops
/// moving — the worst case for holder-directed request routing, and the
/// workload [`run_migration_storm`] measures belief quality under.
///
/// Lossless on purpose: a lost cross-bridge transfer wedges the
/// counting protocols under any engine (the transfer has no
/// retransmission), and a wedged pair stops generating churn.
///
/// # Panics
///
/// Panics if `segments < 2` or the layout is zero-sized.
pub fn build_migration_storm(cfg: &StormConfig) -> Simulation {
    assert!(cfg.segments >= 2, "a storm pair needs two segments");
    let layout =
        SegmentLayout::new(cfg.segments * cfg.hosts_per_segment, cfg.segments).expect("valid");
    let mut graph = WriteGraph::new();
    let mut placements = Vec::new();
    for p in 0..cfg.segments / 2 {
        let host_a = 2 * p * cfg.hosts_per_segment;
        let host_b = (2 * p + 1) * cfg.hosts_per_segment;
        let page = PageId::new(p as u32);
        // Both sides write the page equally; recording only the seeding
        // side homes it there (ties in the write graph would anyway).
        graph.record(page, host_a, u64::from(cfg.counting.target));
        placements.push((host_a, host_b, page));
    }
    let fabric = FabricConfig::chain(cfg.segments).with_homes(graph.homes(&layout));
    let mut sim = Simulation::new(SimConfig {
        topology: Topology::fabric(fabric),
        ..SimConfig::paper(cfg.segments * cfg.hosts_per_segment)
    });
    for (host_a, host_b, page) in placements {
        sim.create_owned(host_a, page);
        sim.add_process(
            host_a,
            Box::new(SharedPageCounter::protocol1(cfg.counting, 0, page)),
        );
        sim.add_process(
            host_b,
            Box::new(SharedPageCounter::protocol1(cfg.counting, 1, page)),
        );
    }
    sim
}

/// Belief quality at one time horizon of the storm (cumulative since
/// the start of the run; difference successive points for rates).
#[derive(Debug, Clone, Copy)]
pub struct StormPoint {
    /// The horizon this point was sampled at.
    pub horizon: SimDuration,
    /// Whether every pair had already finished by the horizon.
    pub finished: bool,
    /// Page migrations so far: cross-segment `transfer_to` frames the
    /// fabric forwarded.
    pub forwarded: u64,
    /// Requests routed on a live holder belief.
    pub belief_hits: u64,
    /// Requests that found no belief and fell back to scoped flooding.
    pub belief_fallbacks: u64,
    /// Existing beliefs repointed by fresher evidence.
    pub belief_repairs: u64,
}

/// Runs the storm to each horizon (a fresh, deterministic run per
/// point — identical prefixes, so the points nest) and samples the
/// fabric-wide belief counters: how routing quality evolves while the
/// holders never sit still. Expect repairs to track migrations and the
/// hit rate to stay well below a holder-stable workload's — that gap
/// *is* the cost of churn.
pub fn run_migration_storm(cfg: &StormConfig, horizons: &[SimDuration]) -> Vec<StormPoint> {
    horizons
        .iter()
        .map(|&horizon| {
            let mut sim = build_migration_storm(cfg);
            let outcome = sim.run(RunLimits {
                max_sim_time: horizon,
                ..RunLimits::default()
            });
            let stats = sim.bridge_stats().expect("storm runs on a fabric");
            StormPoint {
                horizon,
                finished: outcome.finished,
                forwarded: stats.forwarded,
                belief_hits: stats.belief_hits,
                belief_fallbacks: stats.belief_fallback_floods,
                belief_repairs: stats.belief_repairs,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mether_sim::ParallelMode;

    #[test]
    fn scaled_fabric_runs_segment_local() {
        let cfg = ScaleConfig::smoke();
        let mut sim = build_scaled_fabric(&cfg);
        let outcome = sim.run(RunLimits::default());
        assert!(outcome.finished, "{outcome:?}");
        let m = sim.metrics("scale smoke", outcome.finished, 16);
        let pairs = (cfg.segments * cfg.pairs_per_segment) as u64;
        assert_eq!(m.additions, pairs * u64::from(cfg.counting.target));
        // Pages are homed where they are used: only the cold-start
        // request floods crossed a bridge, never a data frame.
        let bridge = sim.bridge_stats().unwrap();
        assert_eq!(
            bridge.forwarded, bridge.req_forwarded,
            "no data frame leaves its segment"
        );
    }

    #[test]
    fn scaled_fabric_is_identical_under_workers() {
        let cfg = ScaleConfig::smoke();
        let serial_outcome;
        let serial_adds;
        {
            let mut sim = build_scaled_fabric(&cfg);
            serial_outcome = sim.run(RunLimits::default());
            serial_adds = sim.metrics("s", true, 16).additions;
        }
        let mut sim = build_scaled_fabric(&cfg);
        sim.set_parallel_mode(ParallelMode::Workers(4));
        let outcome = sim.run(RunLimits::default());
        assert!(outcome.finished);
        assert_eq!(outcome.wall, serial_outcome.wall);
        assert_eq!(outcome.events, serial_outcome.events);
        assert_eq!(sim.metrics("p", true, 16).additions, serial_adds);
    }

    #[test]
    fn migration_storm_churns_the_belief_tables() {
        let cfg = StormConfig {
            segments: 4,
            hosts_per_segment: 2,
            counting: CountingConfig {
                target: 24,
                processes: 2,
                spin: SimDuration::from_micros(48),
            },
        };
        let points = run_migration_storm(
            &cfg,
            &[
                SimDuration::from_millis(40),
                SimDuration::from_millis(160),
                SimDuration::from_secs(120),
            ],
        );
        assert_eq!(points.len(), 3);
        let last = points.last().unwrap();
        assert!(last.finished, "the storm counts out by the last horizon");
        // The page never stops moving, so beliefs were repaired over
        // and over — churn is the point.
        assert!(last.forwarded > 0);
        assert!(
            last.belief_repairs > u64::from(cfg.counting.target) / 2,
            "repairs {} should track migrations",
            last.belief_repairs
        );
        // Cumulative counters nest across horizons (deterministic
        // prefix runs).
        for w in points.windows(2) {
            assert!(w[0].belief_repairs <= w[1].belief_repairs);
            assert!(w[0].forwarded <= w[1].forwarded);
        }
    }
}
