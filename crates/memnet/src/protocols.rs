//! The §4 protocol shapes re-expressed as MemNet programs.
//!
//! On MemNet the full/short page distinction vanishes (everything is a
//! 32-byte chunk), so the five Mether protocols collapse to three
//! structural shapes:
//!
//! | Mether protocol | MemNet shape |
//! |---|---|
//! | P1, P2 (shared page, consistent copy ping-pongs) | [`MemNetProtocol::SharedChunk`] |
//! | P3, P3-hysteresis (disjoint pages, reader purges + refetches) | [`MemNetProtocol::OneWayFlush`] |
//! | P5 (disjoint pages, passive data-driven reader) | [`MemNetProtocol::OneWayUpdate`] |
//!
//! (P4's single-page data-driven hybrid has no hardware analogue: a
//! MemNet reader cannot block on a chunk its own cache holds, which is
//! the same reason P4 loses on Mether.)
//!
//! The paper's §6 claim is that the best Mether protocol and the best
//! MemNet protocol are *the same shape* — the one-way, stationary-writer,
//! passive-reader design. The ranking experiment verifies it.

use crate::ring::RingStats;
use serde::{Deserialize, Serialize};

/// A counting-protocol shape on MemNet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemNetProtocol {
    /// Both hosts read and write one shared chunk; ownership ping-pongs
    /// (write-invalidate). The Mether P1/P2 analogue.
    SharedChunk,
    /// One-way chunks; the reader flushes its cached copy after
    /// `hysteresis` consecutive losses and refetches. `hysteresis: 1` is
    /// the Mether P3 storm; larger values are Figure 7.
    OneWayFlush {
        /// Flush after this many consecutive losses.
        hysteresis: u64,
    },
    /// One-way chunks under write-update: the reader spins locally and
    /// the writer's update refreshes its copy in place. The Mether P5
    /// (data-driven) analogue — and MemNet's best protocol.
    OneWayUpdate,
}

impl MemNetProtocol {
    /// The shapes compared in the ranking experiment, in Mether order.
    pub fn all() -> Vec<MemNetProtocol> {
        vec![
            MemNetProtocol::SharedChunk,
            MemNetProtocol::OneWayFlush { hysteresis: 1 },
            MemNetProtocol::OneWayFlush { hysteresis: 10_000 },
            MemNetProtocol::OneWayUpdate,
        ]
    }

    /// Human-readable label.
    pub fn label(&self) -> String {
        match self {
            MemNetProtocol::SharedChunk => "shared chunk (P1/P2 analogue)".into(),
            MemNetProtocol::OneWayFlush { hysteresis: 1 } => {
                "one-way chunks, flush every loss (P3 analogue)".into()
            }
            MemNetProtocol::OneWayFlush { hysteresis } => {
                format!("one-way chunks, flush after {hysteresis} losses (P3h analogue)")
            }
            MemNetProtocol::OneWayUpdate => "one-way chunks, write-update (P5 analogue)".into(),
        }
    }
}

/// Result of one MemNet counting run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProtocolReport {
    /// The shape that ran.
    pub protocol: MemNetProtocol,
    /// Whether the count completed.
    pub finished: bool,
    /// Virtual wall-clock nanoseconds.
    pub wall_ns: u64,
    /// Ring traffic.
    pub ring: RingStats,
    /// Increments completed.
    pub additions: u64,
    /// Checks that saw an unchanged value.
    pub losses: u64,
    /// Checks that saw a changed value.
    pub wins: u64,
    /// Mean fetch latency, nanoseconds.
    pub avg_miss_ns: u64,
    /// Ring transactions per increment — the ranking metric.
    pub messages_per_addition: f64,
}

impl std::fmt::Display for ProtocolReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "── MemNet: {} ──", self.protocol.label())?;
        writeln!(
            f,
            "  {:<24} {:.3} ms",
            "Wallclock Time",
            self.wall_ns as f64 / 1e6
        )?;
        writeln!(
            f,
            "  {:<24} {:.2} per addition ({} fetch / {} inval / {} update)",
            "Ring messages",
            self.messages_per_addition,
            self.ring.fetches,
            self.ring.invalidates,
            self.ring.updates
        )?;
        writeln!(
            f,
            "  {:<24} {:.2} µs",
            "Average miss latency",
            self.avg_miss_ns as f64 / 1e3
        )?;
        writeln!(
            f,
            "  {:<24} {:.1}",
            "Losses/Wins",
            if self.wins == 0 {
                f64::INFINITY
            } else {
                self.losses as f64 / self.wins as f64
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<String> =
            MemNetProtocol::all().iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn display_has_ranking_metric() {
        let r = crate::run_counting(
            MemNetProtocol::OneWayUpdate,
            &crate::CountingParams::paper(),
        );
        let s = r.to_string();
        assert!(s.contains("Ring messages"));
        assert!(s.contains("per addition"));
    }
}
