//! A simplified **MemNet** simulator — the hardware DSM the Mether paper
//! uses as its comparator.
//!
//! MemNet (Delp, Sethi & Farber) is a distributed shared memory
//! implemented *entirely in hardware*: each host's MemNet device caches
//! 32-byte chunks and satisfies misses over a 200 Mbit/s insertion-
//! modification token ring, with microsecond-scale latencies — four
//! orders of magnitude below Mether's user-level-server-over-Ethernet
//! path. The Mether paper's closing observation is that despite that
//! gulf, "the experimental results for Mether directly match the
//! analytical and simulation results for MemNet": the *same* user
//! protocol (stationary write capability, one-way chunks, passive
//! update-driven readers) wins on both.
//!
//! This crate reproduces exactly what that claim needs: a chunk cache
//! with hardware coherence ([`cache`]), a token-ring cost model
//! ([`ring`]), and the §4 counting-protocol shapes re-expressed as
//! MemNet programs ([`protocols`]). The ranking experiment in
//! `mether-bench` runs both simulators and compares the orderings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod protocols;
pub mod ring;
pub mod sim;

pub use cache::{ChunkId, ChunkState};
pub use protocols::{MemNetProtocol, ProtocolReport};
pub use ring::{RingConfig, RingStats};
pub use sim::{run_counting, CountingParams};
