//! Per-device chunk caches with hardware coherence.
//!
//! Each MemNet device caches 32-byte chunks. Coherence is a simplified
//! MSI protocol with two write policies:
//!
//! * **write-invalidate** — a writer acquires exclusivity by circulating
//!   an invalidate; other caches drop their copies and re-fetch on the
//!   next access (the demand-driven analogue);
//! * **write-update** — a writer circulates the new data; other caches
//!   holding the chunk refresh in place (the data-driven analogue — a
//!   spinning reader sees the new value without any ring transaction of
//!   its own).
//!
//! The paper's hardware assumptions hold by construction here: the
//! invalidate is reliable and unacknowledged, ordering is total (one
//! token), and the cost of invalidating is independent of the number of
//! holders.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a 32-byte chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChunkId(pub u32);

/// Cache state of a chunk in one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChunkState {
    /// No valid copy.
    Invalid,
    /// Read-only copy; other caches may also hold one.
    Shared,
    /// The only copy; writeable.
    Exclusive,
}

/// The write policy a chunk is managed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WritePolicy {
    /// Writers invalidate remote copies.
    Invalidate,
    /// Writers push updates into remote copies.
    Update,
}

/// The coherence directory for one chunk across all devices, plus its
/// value. (Hardware MemNet distributes this state; a central map is an
/// exact simulation of its externally visible behaviour because the ring
/// serialises all transactions.)
#[derive(Debug, Clone)]
pub struct Chunk {
    /// Current value (the counting experiments store one word).
    pub value: u32,
    /// Per-device state.
    states: HashMap<usize, ChunkState>,
    /// Write policy in force for this chunk.
    pub policy: WritePolicy,
}

/// What a cache operation cost in ring transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCost {
    /// Chunk fetches performed.
    pub fetches: u64,
    /// Invalidate circulations.
    pub invalidates: u64,
    /// Update circulations.
    pub updates: u64,
}

impl Chunk {
    /// A chunk created in `home`'s cache with exclusive ownership.
    pub fn new(home: usize, policy: WritePolicy) -> Self {
        let mut states = HashMap::new();
        states.insert(home, ChunkState::Exclusive);
        Chunk {
            value: 0,
            states,
            policy,
        }
    }

    /// The state of the chunk in `dev`'s cache.
    pub fn state(&self, dev: usize) -> ChunkState {
        self.states
            .get(&dev)
            .copied()
            .unwrap_or(ChunkState::Invalid)
    }

    /// Reads the chunk from `dev`, fetching it over the ring on a miss.
    /// Returns the value and the cost.
    pub fn read(&mut self, dev: usize) -> (u32, OpCost) {
        let mut cost = OpCost::default();
        if self.state(dev) == ChunkState::Invalid {
            cost.fetches = 1;
            // Fetch demotes an exclusive holder to shared.
            for st in self.states.values_mut() {
                if *st == ChunkState::Exclusive {
                    *st = ChunkState::Shared;
                }
            }
            self.states.insert(dev, ChunkState::Shared);
        }
        (self.value, cost)
    }

    /// Writes the chunk from `dev`, acquiring exclusivity (invalidate
    /// policy) or pushing an update (update policy).
    pub fn write(&mut self, dev: usize, value: u32) -> OpCost {
        let mut cost = OpCost::default();
        match self.policy {
            WritePolicy::Invalidate => {
                if self.state(dev) != ChunkState::Exclusive {
                    // One circulation invalidates every other copy — the
                    // cost is the same no matter how many caches hold it.
                    cost.invalidates = 1;
                    if self.state(dev) == ChunkState::Invalid {
                        cost.fetches = 1;
                    }
                    self.states.retain(|d, _| *d == dev);
                    self.states.insert(dev, ChunkState::Exclusive);
                }
            }
            WritePolicy::Update => {
                // The writer keeps (or gains) a copy and pushes the data;
                // all shared copies refresh in place.
                if self.state(dev) == ChunkState::Invalid {
                    cost.fetches = 1;
                    self.states.insert(dev, ChunkState::Shared);
                }
                cost.updates = 1;
            }
        }
        self.value = value;
        cost
    }

    /// Drops `dev`'s copy (the reader-side flush used by the protocol-3
    /// analogue).
    pub fn flush(&mut self, dev: usize) {
        if self.state(dev) != ChunkState::Exclusive {
            self.states.remove(&dev);
        }
    }

    /// Devices currently holding a valid copy.
    pub fn holders(&self) -> usize {
        self.states.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_miss_fetches_then_hits() {
        let mut c = Chunk::new(0, WritePolicy::Invalidate);
        let (_, cost) = c.read(1);
        assert_eq!(cost.fetches, 1);
        assert_eq!(c.state(1), ChunkState::Shared);
        let (_, cost) = c.read(1);
        assert_eq!(cost.fetches, 0, "second read hits");
    }

    #[test]
    fn fetch_demotes_exclusive_holder() {
        let mut c = Chunk::new(0, WritePolicy::Invalidate);
        assert_eq!(c.state(0), ChunkState::Exclusive);
        c.read(1);
        assert_eq!(c.state(0), ChunkState::Shared);
    }

    #[test]
    fn invalidate_write_removes_other_copies() {
        let mut c = Chunk::new(0, WritePolicy::Invalidate);
        c.read(1);
        c.read(2);
        assert_eq!(c.holders(), 3);
        let cost = c.write(1, 7);
        assert_eq!(
            cost.invalidates, 1,
            "one circulation regardless of holder count"
        );
        assert_eq!(c.holders(), 1);
        assert_eq!(c.state(1), ChunkState::Exclusive);
        assert_eq!(c.state(0), ChunkState::Invalid);
        assert_eq!(c.value, 7);
    }

    #[test]
    fn exclusive_write_is_free() {
        let mut c = Chunk::new(0, WritePolicy::Invalidate);
        let cost = c.write(0, 5);
        assert_eq!(cost, OpCost::default());
    }

    #[test]
    fn update_write_refreshes_shared_copies() {
        let mut c = Chunk::new(0, WritePolicy::Update);
        c.read(1);
        let cost = c.write(0, 9);
        assert_eq!(cost.updates, 1);
        assert_eq!(c.state(1), ChunkState::Shared, "reader's copy stays valid");
        let (v, cost) = c.read(1);
        assert_eq!(v, 9, "reader sees the update without a fetch");
        assert_eq!(cost.fetches, 0);
    }

    #[test]
    fn flush_forces_refetch() {
        let mut c = Chunk::new(0, WritePolicy::Invalidate);
        c.read(1);
        c.flush(1);
        assert_eq!(c.state(1), ChunkState::Invalid);
        let (_, cost) = c.read(1);
        assert_eq!(cost.fetches, 1);
    }

    #[test]
    fn flush_never_drops_the_exclusive_copy() {
        let mut c = Chunk::new(0, WritePolicy::Invalidate);
        c.flush(0);
        assert_eq!(c.state(0), ChunkState::Exclusive);
    }
}
