//! Two-process counting on MemNet: the §4 experiment transplanted onto
//! the hardware DSM.
//!
//! Each host runs the same "count to 1024 cooperatively" loop as the
//! Mether version, but chunk operations cost nanoseconds-to-microseconds
//! of ring time instead of milliseconds of server time. Hosts advance
//! local clocks; the simulation always steps the host whose clock is
//! earliest, so chunk-state changes serialise in time order exactly as
//! the single token ring would serialise them.

use crate::cache::{Chunk, OpCost, WritePolicy};
use crate::protocols::{MemNetProtocol, ProtocolReport};
use crate::ring::{RingConfig, RingStats};

/// Parameters of a MemNet counting run.
#[derive(Debug, Clone)]
pub struct CountingParams {
    /// Count to this value.
    pub target: u32,
    /// Host CPU cost of one check iteration, nanoseconds (the same
    /// ~50 µs loop as on the Suns).
    pub spin_ns: u64,
    /// Ring parameters.
    pub ring: RingConfig,
}

impl CountingParams {
    /// The paper-equivalent run: count to 1024, 50 µs iterations,
    /// two-host MemNet ring.
    pub fn paper() -> Self {
        CountingParams {
            target: 1024,
            spin_ns: 50_000,
            ring: RingConfig::memnet(2),
        }
    }
}

struct HostState {
    clock: u64,
    /// Last value read from the chunk this host *reads* (win/loss is
    /// judged per chunk, not against our own writes).
    last_seen: Option<u32>,
    /// Highest value this host has written itself.
    own_written: u32,
    /// A write decided by the previous read op, not yet performed.
    pending_write: Option<u32>,
    losses: u64,
    wins: u64,
    additions: u64,
    losses_since_flush: u64,
    done: bool,
    miss_ns_total: u64,
    misses: u64,
}

impl HostState {
    fn new() -> Self {
        HostState {
            clock: 0,
            last_seen: None,
            own_written: 0,
            pending_write: None,
            losses: 0,
            wins: 0,
            additions: 0,
            losses_since_flush: 0,
            done: false,
            miss_ns_total: 0,
            misses: 0,
        }
    }
}

fn charge(ring: &RingConfig, stats: &mut RingStats, host: &mut HostState, cost: OpCost) -> u64 {
    let mut ns = 0;
    stats.fetches += cost.fetches;
    stats.invalidates += cost.invalidates;
    stats.updates += cost.updates;
    stats.bytes += (cost.fetches + cost.updates) * ring.chunk_size as u64;
    ns += cost.fetches * ring.fetch_ns();
    ns += cost.invalidates * ring.invalidate_ns();
    ns += cost.updates * ring.update_ns();
    if cost.fetches > 0 {
        host.miss_ns_total += cost.fetches * ring.fetch_ns();
        host.misses += cost.fetches;
    }
    ns
}

/// Runs the counting experiment under `protocol` and reports ring costs.
pub fn run_counting(protocol: MemNetProtocol, params: &CountingParams) -> ProtocolReport {
    let ring = params.ring.clone();
    let mut stats = RingStats::default();
    let mut hosts = [HostState::new(), HostState::new()];

    // Chunk layout: the shared shapes use chunk 0; the one-way shapes
    // give host i exclusive ownership of chunk i.
    let policy = match protocol {
        MemNetProtocol::OneWayUpdate => WritePolicy::Update,
        _ => WritePolicy::Invalidate,
    };
    let mut chunks = [Chunk::new(0, policy), Chunk::new(1, policy)];

    let shared = matches!(protocol, MemNetProtocol::SharedChunk);

    // Step the earliest host until both finish (or a safety cap).
    let cap: u64 = 60_000_000_000; // 60 s of virtual time; far beyond need
    loop {
        if hosts[0].done && hosts[1].done {
            break;
        }
        let h = match (hosts[0].done, hosts[1].done) {
            (false, true) => 0,
            (true, false) => 1,
            _ => {
                if hosts[0].clock <= hosts[1].clock {
                    0
                } else {
                    1
                }
            }
        };
        if hosts[h].clock > cap {
            break;
        }

        // One *operation* of the counting program on host h — the
        // stepping is per-op, not per-iteration, so that a host's write
        // cannot become visible to a peer read at an earlier virtual
        // time.
        let parity = h as u32;
        let read_chunk = if shared { 0 } else { 1 - h };
        match hosts[h].pending_write {
            Some(v) => {
                hosts[h].pending_write = None;
                let write_chunk = if shared { 0 } else { h };
                let cost = chunks[write_chunk].write(h, v);
                let ns = charge(&ring, &mut stats, &mut hosts[h], cost);
                hosts[h].clock += ns;
                hosts[h].additions += 1;
                hosts[h].own_written = v;
                if shared {
                    hosts[h].last_seen = Some(v);
                }
                if v >= params.target {
                    hosts[h].done = true;
                }
            }
            None => {
                let (value, cost) = chunks[read_chunk].read(h);
                let ns = charge(&ring, &mut stats, &mut hosts[h], cost);
                hosts[h].clock += ns + params.spin_ns;

                let changed = hosts[h].last_seen != Some(value);
                if changed {
                    hosts[h].wins += 1;
                    hosts[h].losses_since_flush = 0;
                } else {
                    hosts[h].losses += 1;
                    hosts[h].losses_since_flush += 1;
                }
                hosts[h].last_seen = Some(value);

                // In the one-way shapes the counter's effective value is
                // the newer of what the peer published and what we last
                // wrote ourselves.
                let effective = value.max(hosts[h].own_written);
                if effective >= params.target {
                    hosts[h].done = true;
                } else if effective % 2 == parity {
                    hosts[h].pending_write = Some(effective + 1);
                } else if let MemNetProtocol::OneWayFlush { hysteresis } = protocol {
                    if hosts[h].losses_since_flush >= hysteresis {
                        chunks[read_chunk].flush(h);
                        hosts[h].losses_since_flush = 0;
                    }
                }
            }
        }
    }

    let wall_ns = hosts[0].clock.max(hosts[1].clock);
    let additions = hosts[0].additions + hosts[1].additions;
    let losses = hosts[0].losses + hosts[1].losses;
    let wins = hosts[0].wins + hosts[1].wins;
    let misses = hosts[0].misses + hosts[1].misses;
    let miss_ns = hosts[0].miss_ns_total + hosts[1].miss_ns_total;
    ProtocolReport {
        protocol,
        finished: hosts[0].done && hosts[1].done,
        wall_ns,
        ring: stats,
        additions,
        losses,
        wins,
        avg_miss_ns: miss_ns.checked_div(misses).unwrap_or(0),
        messages_per_addition: if additions == 0 {
            f64::INFINITY
        } else {
            stats.messages() as f64 / additions as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CountingParams {
        CountingParams {
            target: 64,
            spin_ns: 50_000,
            ring: RingConfig::memnet(2),
        }
    }

    #[test]
    fn all_protocols_complete_the_count() {
        for p in MemNetProtocol::all() {
            let r = run_counting(p, &small());
            assert!(r.finished, "{p:?} did not finish: {r:?}");
            assert_eq!(r.additions, 64, "{p:?}");
        }
    }

    #[test]
    fn one_way_update_sends_fewest_messages() {
        let params = small();
        let update = run_counting(MemNetProtocol::OneWayUpdate, &params);
        let shared = run_counting(MemNetProtocol::SharedChunk, &params);
        let flush = run_counting(MemNetProtocol::OneWayFlush { hysteresis: 1 }, &params);
        assert!(
            update.messages_per_addition < shared.messages_per_addition,
            "update {} vs shared {}",
            update.messages_per_addition,
            shared.messages_per_addition
        );
        assert!(update.messages_per_addition < flush.messages_per_addition);
    }

    #[test]
    fn flush_every_loss_floods_the_ring() {
        let params = small();
        let flush = run_counting(MemNetProtocol::OneWayFlush { hysteresis: 1 }, &params);
        let shared = run_counting(MemNetProtocol::SharedChunk, &params);
        assert!(
            flush.ring.fetches > shared.ring.fetches,
            "flush {} vs shared {}",
            flush.ring.fetches,
            shared.ring.fetches
        );
    }

    #[test]
    fn update_policy_costs_one_update_per_addition() {
        let r = run_counting(MemNetProtocol::OneWayUpdate, &small());
        // One update circulation per increment, plus a handful of
        // startup fetches.
        assert!(r.ring.updates >= 64);
        assert!(r.ring.fetches <= 4, "{}", r.ring.fetches);
        assert_eq!(r.ring.invalidates, 0);
    }

    #[test]
    fn hardware_latencies_make_every_protocol_fast() {
        // Even the worst MemNet protocol finishes 1024 counts orders of
        // magnitude faster than the best Mether protocol — the regime
        // gap the paper stresses.
        let r = run_counting(
            MemNetProtocol::OneWayFlush { hysteresis: 1 },
            &CountingParams::paper(),
        );
        assert!(r.finished);
        let secs = r.wall_ns as f64 / 1e9;
        assert!(secs < 2.0, "{secs}");
    }
}
