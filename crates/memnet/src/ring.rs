//! The MemNet insertion-modification token ring: a cost model.
//!
//! MemNet's interconnect is a slotted ring at 200 Mbit/s. A request
//! circulates until the first device holding a valid copy of the chunk
//! *modifies the slot in flight*, inserting the data; the originator
//! removes it a full circulation later. We model each operation as a
//! fixed number of ring circulations plus per-hop device delay and the
//! serialisation time of the payload — all in nanoseconds, four orders
//! of magnitude below Mether's Ethernet path, exactly the regime gap the
//! paper describes.

use serde::{Deserialize, Serialize};

/// Parameters of the ring.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RingConfig {
    /// Devices on the ring.
    pub hosts: usize,
    /// Link bit rate (200 Mbit/s in MemNet).
    pub link_bps: u64,
    /// Per-device insertion delay, nanoseconds.
    pub hop_delay_ns: u64,
    /// Chunk size in bytes (32 in MemNet).
    pub chunk_size: usize,
}

impl RingConfig {
    /// The MemNet prototype: 200 Mbit/s, 32-byte chunks.
    pub fn memnet(hosts: usize) -> Self {
        RingConfig {
            hosts,
            link_bps: 200_000_000,
            hop_delay_ns: 100,
            chunk_size: 32,
        }
    }

    /// Nanoseconds for one full circulation carrying `bytes` of payload.
    pub fn circulation_ns(&self, bytes: usize) -> u64 {
        let hop = self.hop_delay_ns * self.hosts as u64;
        let serialise = (bytes as u64 * 8).saturating_mul(1_000_000_000) / self.link_bps;
        hop + serialise
    }

    /// Latency of a chunk fetch: request circulates to the holder, data
    /// comes back — one circulation with header + one with data.
    pub fn fetch_ns(&self) -> u64 {
        self.circulation_ns(8) + self.circulation_ns(self.chunk_size)
    }

    /// Latency of an invalidate: one circulation; the hardware guarantees
    /// delivery, so no acknowledgement traffic exists ("no explicit ack
    /// is needed for a purge").
    pub fn invalidate_ns(&self) -> u64 {
        self.circulation_ns(8)
    }

    /// Latency of a write-update carrying the chunk to all caches.
    pub fn update_ns(&self) -> u64 {
        self.circulation_ns(self.chunk_size)
    }
}

/// Ring traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingStats {
    /// Fetch transactions (miss services).
    pub fetches: u64,
    /// Invalidate circulations.
    pub invalidates: u64,
    /// Write-update circulations.
    pub updates: u64,
    /// Total payload bytes moved.
    pub bytes: u64,
}

impl RingStats {
    /// Total ring transactions.
    pub fn messages(&self) -> u64 {
        self.fetches + self.invalidates + self.updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_is_microsecond_scale() {
        let r = RingConfig::memnet(4);
        let us = r.fetch_ns() as f64 / 1000.0;
        assert!((1.0..10.0).contains(&us), "{us} µs");
    }

    #[test]
    fn circulation_scales_with_hosts() {
        let small = RingConfig::memnet(2).circulation_ns(32);
        let large = RingConfig::memnet(16).circulation_ns(32);
        assert!(large > small);
    }

    #[test]
    fn invalidate_cheaper_than_fetch() {
        let r = RingConfig::memnet(4);
        assert!(r.invalidate_ns() < r.fetch_ns());
    }

    #[test]
    fn four_orders_of_magnitude_below_mether() {
        // The paper: network DSM latency "can be up to 10^4 times higher
        // than a conventional memory bus". MemNet's fetch is ~2 µs;
        // Mether's measured fault latency is tens of ms.
        let r = RingConfig::memnet(4);
        let memnet_fetch_s = r.fetch_ns() as f64 / 1e9;
        let mether_fault_s = 0.05;
        assert!(mether_fault_s / memnet_fetch_s > 1e4);
    }

    #[test]
    fn stats_sum() {
        let s = RingStats {
            fetches: 2,
            invalidates: 3,
            updates: 4,
            bytes: 0,
        };
        assert_eq!(s.messages(), 9);
    }
}
