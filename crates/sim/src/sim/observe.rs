//! The always-on DSM invariant observer.
//!
//! After PRs 3–6 the protocol state is spread over three layers — host
//! page tables, per-device bridge filters, and the elected fabric —
//! and a contradiction between them (two consistent holders, a belief
//! pointing off the device's own ports, a stamp from the future) can
//! stay latent for thousands of events before it surfaces as a wrong
//! answer. The observer cross-checks the deployment for such
//! contradictions after event pops, the way scx_model's `Observer`
//! sweeps its kernel state every step.
//!
//! # The invariant catalogue
//!
//! **(a) Page-table / holder agreement** — across all hosts, every page
//! has *at most one* consistent (writable) holder. Not "exactly one":
//! during a consistency transfer the granting side clears its
//! `consistent` bit before the `transfer_to` frame lands, so a page
//! legitimately has zero holders mid-flight (and permanently, if a
//! lossy wire ate the transfer — that is livelock, not corruption).
//! A holder must actually hold a buffer, and each host's generation for
//! a page never moves backwards.
//!
//! **(b) Bridge belief sanity** — a device's believed-holder port, its
//! learned-interest bits, and its post-election hold-downs all name
//! physical ports of that device; pinned segments name segments of the
//! layout. (The belief may legitimately be *stale* — pointing where the
//! holder used to be until the next data transit repairs it — so the
//! structural check is the invariant; chasing accuracy is the belief
//! counters' job.) Per device life and election epoch, the
//! newest-generation gate only moves forward.
//!
//! **(c) Interest-table / age-stamp coherence** — demand stamps never
//! run ahead of the device's forwarded-transit clock or of sim time,
//! and the page's home port is always in the effective interest mask,
//! however old (home ports never age out).
//!
//! **(d) Port-state symmetry and elected-tree consistency** — a
//! device's forwarding ports are a subset of its live ports (dead links
//! never forward), every active-tree next hop leaves through a
//! forwarding port, election epochs only advance within one device
//! life, and two live devices whose gossiped `DeviceView`s agree
//! exactly *and* sit in the same view-induced component have elected
//! identical active trees (the election is a deterministic function of
//! the views, restricted to the electing device's partition — islands
//! of a cut fabric each elect their own tree).
//!
//! **(e) Lane/window invariants** — the serial engine never pops time
//! backwards, and under [`ParallelMode::Workers`](super::ParallelMode)
//! no lane pops an event at or past its window horizon (the lookahead
//! contract); those checks live inline in `sim.rs` / `par.rs`, gated on
//! the same switch as the sweeps here.
//!
//! # Gating and cost: the dirty-set model
//!
//! The observer is on under `debug_assertions` (so the whole test suite
//! runs swept), forced on/off by `METHER_OBSERVE=1` / `METHER_OBSERVE=0`,
//! and samples every [`Observer::stride`] events. Sampled sweeps are
//! **incremental**: every mutation site that can change observable
//! consistency state registers its entity in a dirty set — page-table
//! slot writes and generation advances mark `(host, page)` (see
//! `PageTable::take_dirty_pages`), belief/interest/port-state/election
//! changes mark `(device, page)` or the device structurally (every
//! filter mutation flows through `BridgePolicy::filter_mut`, every
//! election recompute and port kill/revival sets the structural flag;
//! see `Fabric::take_dirty`), and bridge deaths/revivals set a
//! fabric-wide liveness flag. A sampled sweep drains the dirty sets and
//! checks *only* those entities: dirty host pages update a persistent
//! page → holder map (invariant (a) stays a whole-deployment property —
//! a page is re-checked exactly when some replica of it moved), dirty
//! device pages get the (b)/(c) block, structurally-dirty devices get
//! the per-device (d) block, and any structural or liveness dirt
//! re-runs the cross-device elected-tree consistency check. Cost is
//! O(what changed since the last sweep), not O(deployment).
//!
//! The **full sweep stays the oracle**: it rebuilds the holder map from
//! scratch and re-checks every entity, and runs at every `run` return,
//! on every [`check_invariants`](super::Simulation::check_invariants)
//! call (the soak harness calls it in release builds), and on a sampled
//! cadence (every [`ORACLE_EVERY`]th sampled sweep). In the
//! differential mode (`METHER_OBSERVE_DIFF=1`) each oracle sweep
//! asserts the incrementally-maintained holder map is *identical* to
//! the rebuilt one, so under-conservative dirty-marking (a mutation
//! site that forgot to mark) can never stay quiet; without the flag the
//! oracle silently adopts the rebuilt map, keeping incremental state
//! self-healing.
//!
//! Unless pinned by `METHER_OBSERVE_EVERY=n` (1 = sweep after every
//! event), the stride self-tunes from the measured incremental cost
//! plus the amortised oracle share, keeping the overhead at a few
//! checks per event — but because incremental sweeps are cheap, the
//! tuned stride lands orders of magnitude lower than the full-sweep
//! observer could afford on a 100+ device fabric: same budget, far more
//! coverage. [`ObserverStats`] (surfaced through
//! [`ProtocolMetrics`](crate::metrics::ProtocolMetrics)) records
//! sweeps, entities checked, the dirty-set high-water mark, and the
//! effective stride.

use crate::host::HostSim;
use mether_core::{BridgeTopology, DeviceView, Generation, HostMask, PageId};
use mether_net::{Fabric, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Every `ORACLE_EVERY`th *sampled* sweep is a full-deployment oracle
/// sweep instead of an incremental one (run returns and explicit
/// `check_invariants` calls are always oracles). Amortised over the
/// stride, the oracle share of the budget stays small while bounding
/// how long an under-marked mutation could hide.
const ORACLE_EVERY: u64 = 64;

/// Observer coverage counters, surfaced through
/// [`ProtocolMetrics`](crate::metrics::ProtocolMetrics) so soak reports
/// show what the invariant observer actually looked at.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObserverStats {
    /// Sampled incremental sweeps run (oracle sweeps included).
    pub sweeps: u64,
    /// Full-deployment oracle sweeps run (a subset of `sweeps` plus the
    /// run-return / `check_invariants` sweeps).
    pub full_sweeps: u64,
    /// Cumulative entity states scanned across all sweeps.
    pub entities_checked: u64,
    /// Largest dirty set (host pages + device pages + structural marks)
    /// drained by a single sweep.
    pub dirty_high_water: u64,
    /// The current sampling stride (events between sampled sweeps).
    pub effective_stride: u64,
}

/// True when devices `a` and `b` sit in the same connected component of
/// the fabric graph induced by `views` — alive devices joined through
/// their live ports (physical ∩ view port set).
///
/// The election computes the spanning tree of the *electing device's*
/// component, so two view-identical devices must agree on the tree only
/// when they share a component: after a partition, devices on opposite
/// sides may hold byte-identical views (the same obituaries and port
/// sets, gossiped before the cut or derived independently) yet each
/// correctly elects the tree of its own island.
fn same_component(topology: &BridgeTopology, views: &[DeviceView], a: usize, b: usize) -> bool {
    let nb = topology.bridges();
    let live: Vec<HostMask> = (0..nb)
        .map(|d| {
            let physical: HostMask = topology.ports(d).iter().copied().collect();
            physical.intersection(&views[d].ports)
        })
        .collect();
    let alive: Vec<bool> = (0..nb)
        .map(|d| views[d].alive && !live[d].is_empty())
        .collect();
    if !alive[a] || !alive[b] {
        return false;
    }
    let mut seen_b = vec![false; nb];
    let mut seen_s = vec![false; topology.segments()];
    seen_b[a] = true;
    let mut queue = vec![a];
    while let Some(x) = queue.pop() {
        for s in &live[x] {
            if seen_s[s] {
                continue;
            }
            seen_s[s] = true;
            for (y, seen) in seen_b.iter_mut().enumerate() {
                if !*seen && alive[y] && live[y].contains(s) {
                    *seen = true;
                    queue.push(y);
                }
            }
        }
    }
    seen_b[b]
}

/// Cross-layer invariant checker with monotonicity watermarks.
///
/// The watermarks make the sweeps *temporal*: a generation or election
/// epoch that moves backwards between two sweeps is caught even though
/// each individual snapshot looks self-consistent. The holder map makes
/// them *incremental*: invariant (a) is a whole-deployment property,
/// but the map lets a sweep re-judge a page from O(1) state when any
/// replica of it moves (see the module docs).
pub(super) struct Observer {
    enabled: bool,
    /// Sweep every `stride` popped events (1 = every event). Unless
    /// pinned by `METHER_OBSERVE_EVERY`, each sweep retunes this from
    /// its own measured size, so the amortised overhead per event stays
    /// bounded whether the deployment is 2 hosts or 1024.
    stride: u64,
    /// A fixed stride from `METHER_OBSERVE_EVERY`, disabling retuning.
    fixed_stride: Option<u64>,
    /// `METHER_OBSERVE_DIFF=1`: every oracle sweep asserts the
    /// incremental holder map equals the rebuilt one instead of
    /// silently adopting it.
    diff: bool,
    counter: u64,
    /// Cost of the last full sweep, for the oracle share of the stride
    /// retune.
    last_full_cost: u64,
    /// Incrementally-maintained page → consistent holders map (the
    /// derived state behind invariant (a)); at most one entry per page,
    /// or the sweep that saw the second holder has already panicked.
    holders: HashMap<u32, Vec<usize>>,
    /// Per-(host, page) newest generation seen by any sweep.
    host_gens: HashMap<(usize, u32), Generation>,
    /// Per-(device, page): the device life (restart count), election
    /// epoch, and newest-generation gate at the last sweep. The gate is
    /// only monotone within one (life, epoch) — `flush_port` resets it
    /// so post-reconvergence data may re-teach an older generation, and
    /// every flush bumps the epoch.
    device_gens: HashMap<(usize, u32), (u64, u64, Generation)>,
    /// Per-device (life, election epoch) at the last sweep.
    device_epochs: HashMap<usize, (u64, u64)>,
    stats: ObserverStats,
}

impl Default for Observer {
    fn default() -> Self {
        Observer {
            enabled: false,
            stride: 1,
            fixed_stride: None,
            diff: false,
            counter: 0,
            last_full_cost: 0,
            holders: HashMap::new(),
            host_gens: HashMap::new(),
            device_gens: HashMap::new(),
            device_epochs: HashMap::new(),
            stats: ObserverStats::default(),
        }
    }
}

impl Observer {
    /// The observer for an `hosts`-host deployment, gated by
    /// `METHER_OBSERVE` / `debug_assertions`; `METHER_OBSERVE_EVERY`
    /// pins the sampling stride (1 = sweep after every event),
    /// otherwise sweeps self-tune their frequency to their measured
    /// cost. `METHER_OBSERVE_DIFF=1` turns oracle sweeps differential.
    pub(super) fn from_env(hosts: usize) -> Observer {
        let _ = hosts;
        let enabled = match std::env::var("METHER_OBSERVE") {
            Ok(v) => {
                let v = v.trim();
                !(v == "0" || v.eq_ignore_ascii_case("false") || v.eq_ignore_ascii_case("off"))
            }
            Err(_) => cfg!(debug_assertions),
        };
        let fixed_stride = std::env::var("METHER_OBSERVE_EVERY")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&n| n > 0);
        let diff = std::env::var("METHER_OBSERVE_DIFF").is_ok_and(|v| {
            let v = v.trim();
            !(v == "0" || v.eq_ignore_ascii_case("false") || v.eq_ignore_ascii_case("off"))
        });
        Observer {
            enabled,
            stride: fixed_stride.unwrap_or(1),
            fixed_stride,
            diff,
            ..Observer::default()
        }
    }

    /// Whether per-event checks and sweeps are active.
    pub(super) fn enabled(&self) -> bool {
        self.enabled
    }

    /// Coverage counters so far.
    pub(super) fn stats(&self) -> ObserverStats {
        let mut s = self.stats;
        s.effective_stride = self.stride;
        s
    }

    /// Counts one popped event; true when a sampled sweep is due.
    pub(super) fn on_event(&mut self) -> bool {
        if !self.enabled {
            return false;
        }
        self.counter += 1;
        self.counter.is_multiple_of(self.stride)
    }

    /// One sampled sweep: incremental over the drained dirty sets, with
    /// every [`ORACLE_EVERY`]th sweep escalated to the full oracle.
    /// Panics with a diagnostic on the first contradiction found.
    pub(super) fn sweep_sampled(
        &mut self,
        hosts: &mut [&mut HostSim],
        fabric: Option<&mut Fabric>,
        now: SimTime,
    ) {
        if self.stats.sweeps % ORACLE_EVERY == ORACLE_EVERY - 1 {
            self.sweep_full(hosts, fabric, now);
            return;
        }
        let cost = self.sweep_incremental(hosts, fabric, now);
        self.retune(cost);
    }

    /// One incremental sweep regardless of the oracle cadence — the
    /// benchmark hook behind [`Simulation::sweep_dirty`](super::Simulation::sweep_dirty).
    pub(super) fn sweep_incremental_forced(
        &mut self,
        hosts: &mut [&mut HostSim],
        fabric: Option<&mut Fabric>,
        now: SimTime,
    ) {
        let cost = self.sweep_incremental(hosts, fabric, now);
        self.retune(cost);
    }

    fn retune(&mut self, incremental_cost: u64) {
        if self.fixed_stride.is_none() {
            // Space sweeps so the amortised cost (incremental sweep
            // plus this stride's share of the periodic oracle) lands
            // around a handful of checks per popped event. The floor
            // matters as much as the scaling: even a tiny sweep pays
            // fixed setup (collecting host refs, hash traffic), so
            // sweeping a 2-host spin loop every event would cost 10x
            // the events themselves.
            let amortised = incremental_cost + self.last_full_cost / ORACLE_EVERY;
            self.stride = (amortised / 8).max(64);
        }
    }

    /// The full-deployment oracle sweep: drains the dirty sets through
    /// the incremental path (so the holder map is current), then
    /// re-checks every entity from scratch and rebuilds the holder map —
    /// asserting it matches the incremental one under
    /// `METHER_OBSERVE_DIFF=1`, silently adopting the rebuild otherwise.
    /// Panics with a diagnostic on the first contradiction found.
    pub(super) fn sweep_full(
        &mut self,
        hosts: &mut [&mut HostSim],
        mut fabric: Option<&mut Fabric>,
        now: SimTime,
    ) {
        let incr = self.sweep_incremental(hosts, fabric.as_deref_mut(), now);
        let mut cost = self.sweep_hosts_full(hosts, now);
        if let Some(fabric) = fabric {
            cost += self.sweep_fabric_full(fabric, now);
        }
        self.last_full_cost = cost;
        self.stats.full_sweeps += 1;
        self.stats.entities_checked += cost;
        self.retune(incr);
    }

    /// One incremental sweep: drain every dirty set, check only the
    /// drained entities (plus the cross-entity invariants they
    /// participate in). Returns the number of states scanned.
    fn sweep_incremental(
        &mut self,
        hosts: &mut [&mut HostSim],
        fabric: Option<&mut Fabric>,
        now: SimTime,
    ) -> u64 {
        let mut cost = 0u64;
        let mut dirty_total = 0u64;
        // Invariant (a): update the holder map for every dirty
        // (host, page), then re-judge exactly the touched pages. The
        // two-phase shape matters: a consistency transfer dirties both
        // ends, and judging mid-update would see the stale holder and
        // the new one together.
        let mut touched: Vec<u32> = Vec::new();
        for h in hosts.iter_mut() {
            for page in h.table.take_dirty_pages() {
                cost += 1;
                dirty_total += 1;
                let idx = page.index();
                let is_holder = h.table.is_consistent_holder(page);
                if is_holder {
                    assert!(
                        h.table.page_buf(page).is_some(),
                        "invariant (a): host {} holds page {page} consistent \
                         without a buffer at {now}",
                        h.index,
                    );
                }
                let holders = self.holders.entry(idx).or_default();
                let pos = holders.iter().position(|&x| x == h.index);
                match (pos, is_holder) {
                    (Some(i), false) => {
                        holders.remove(i);
                    }
                    (None, true) => {
                        holders.push(h.index);
                        holders.sort_unstable();
                    }
                    _ => {}
                }
                if holders.is_empty() {
                    self.holders.remove(&idx);
                }
                touched.push(idx);
                let gen = h.table.generation(page);
                let key = (h.index, idx);
                if let Some(&seen) = self.host_gens.get(&key) {
                    assert!(
                        !seen.newer_than(gen),
                        "invariant (a): host {} page {page} generation went \
                         backwards ({seen} -> {gen}) at {now}",
                        h.index,
                    );
                }
                self.host_gens.insert(key, gen);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for idx in touched {
            if let Some(hs) = self.holders.get(&idx) {
                assert!(
                    hs.len() <= 1,
                    "invariant (a): page {} has two consistent holders \
                     (hosts {} and {}) at {now}",
                    PageId::new(idx),
                    hs[0],
                    hs[1],
                );
            }
        }
        if let Some(fabric) = fabric {
            let (dirty_devices, liveness) = fabric.take_dirty();
            let mut rerun_tree = liveness;
            for (d, pages, structural) in dirty_devices {
                dirty_total += pages.len() as u64 + u64::from(structural);
                if structural {
                    rerun_tree = true;
                }
                if fabric.is_dead(d) {
                    continue; // dead devices hold no checkable state
                }
                if structural {
                    cost += self.check_device_structure(fabric, d, now);
                }
                for page in pages {
                    cost += self.check_device_page(fabric, d, page, now);
                }
            }
            if rerun_tree {
                cost += check_tree_consistency(fabric, now);
            }
        }
        self.stats.sweeps += 1;
        self.stats.entities_checked += cost;
        self.stats.dirty_high_water = self.stats.dirty_high_water.max(dirty_total);
        cost
    }

    /// Invariant (a) from scratch: at most one consistent holder per
    /// page across the deployment, holders have buffers, generations
    /// never regress. Rebuilds (and under `diff` cross-checks) the
    /// incremental holder map. Returns the number of states scanned.
    fn sweep_hosts_full(&mut self, hosts: &[&mut HostSim], now: SimTime) -> u64 {
        let mut cost = hosts.len() as u64;
        let mut rebuilt: HashMap<u32, Vec<usize>> = HashMap::new();
        for h in hosts.iter() {
            for page in h.table.tracked_pages() {
                cost += 1;
                let idx = page.index();
                if h.table.is_consistent_holder(page) {
                    assert!(
                        h.table.page_buf(page).is_some(),
                        "invariant (a): host {} holds page {page} consistent \
                         without a buffer at {now}",
                        h.index,
                    );
                    let hs = rebuilt.entry(idx).or_default();
                    if let Some(&other) = hs.first() {
                        panic!(
                            "invariant (a): page {page} has two consistent holders \
                             (hosts {other} and {}) at {now}",
                            h.index,
                        );
                    }
                    hs.push(h.index);
                }
                let gen = h.table.generation(page);
                let key = (h.index, idx);
                if let Some(&seen) = self.host_gens.get(&key) {
                    assert!(
                        !seen.newer_than(gen),
                        "invariant (a): host {} page {page} generation went \
                         backwards ({seen} -> {gen}) at {now}",
                        h.index,
                    );
                }
                self.host_gens.insert(key, gen);
            }
        }
        if self.diff {
            assert!(
                self.holders == rebuilt,
                "differential oracle: the incremental holder map diverged from \
                 the full rebuild at {now} — some holder mutation site is not \
                 dirty-marked.\n incremental: {:?}\n rebuilt: {:?}",
                {
                    let mut v: Vec<_> = self.holders.iter().collect();
                    v.sort();
                    v
                },
                {
                    let mut v: Vec<_> = rebuilt.iter().collect();
                    v.sort();
                    v
                },
            );
        }
        self.holders = rebuilt;
        cost
    }

    /// Invariants (b)–(d) over every live bridge device, from scratch.
    /// Returns the number of device/page/route states scanned.
    fn sweep_fabric_full(&mut self, fabric: &Fabric, now: SimTime) -> u64 {
        let mut cost = 0u64;
        for d in 0..fabric.device_count() {
            if fabric.is_dead(d) {
                continue;
            }
            cost += self.check_device_structure(fabric, d, now);
            for page in fabric.device(d).policy().tracked_pages() {
                cost += self.check_device_page(fabric, d, page, now);
            }
        }
        cost + check_tree_consistency(fabric, now)
    }

    /// The per-device structural block of invariants (b)/(d): port-set
    /// containments, next-hop sanity, election-epoch monotonicity,
    /// hold-down coverage. Returns the number of states scanned.
    fn check_device_structure(&mut self, fabric: &Fabric, d: usize, now: SimTime) -> u64 {
        let topology = fabric.topology();
        let segments = topology.segments();
        let policy = fabric.device(d).policy();
        let ports_mask = policy.ports_mask();
        let live = policy.self_live_ports();
        let fwd = policy.active().forwarding(d);
        // (d) structural: live ⊆ physical, forwarding ⊆ live.
        assert!(
            live.intersection(ports_mask) == live,
            "invariant (d): device {d} live ports {live:?} exceed its \
             physical ports at {now}"
        );
        assert!(
            fwd.intersection(&live) == fwd,
            "invariant (d): device {d} forwards on {fwd:?} beyond its \
             live ports {live:?} at {now}"
        );
        // (d) next hops leave through forwarding ports.
        for dst in 0..segments {
            if let Some(hop) = policy.active().next_hop(d, dst) {
                assert!(
                    fwd.contains(hop),
                    "invariant (d): device {d} routes toward segment {dst} \
                     out port {hop}, which is not forwarding, at {now}"
                );
            }
        }
        // (d) election epochs only advance within one device life.
        let life = fabric.restarts(d);
        let epoch = policy.election_epoch();
        if let Some(&(seen_life, seen_epoch)) = self.device_epochs.get(&d) {
            assert!(
                life != seen_life || epoch >= seen_epoch,
                "invariant (d): device {d} election epoch went backwards \
                 ({seen_epoch} -> {epoch}) within one life at {now}"
            );
        }
        self.device_epochs.insert(d, (life, epoch));
        // (b) hold-downs only cover physical ports.
        let held = policy.held_ports(now);
        assert!(
            held.intersection(ports_mask) == held,
            "invariant (b): device {d} holds down {held:?} beyond its \
             physical ports at {now}"
        );
        1 + segments as u64
    }

    /// The per-(device, page) block of invariants (b)/(c): belief and
    /// interest containments, stamp-table coverage and clock bounds,
    /// home-port persistence, the newest-generation watermark. Returns
    /// the number of states scanned.
    fn check_device_page(&mut self, fabric: &Fabric, d: usize, page: PageId, now: SimTime) -> u64 {
        let topology = fabric.topology();
        let segments = topology.segments();
        let nports = topology.ports(d).len();
        let policy = fabric.device(d).policy();
        let ports_mask = policy.ports_mask();
        let clock = policy.aging_clock();
        let learned = policy.learned(page);
        assert!(
            learned.intersection(ports_mask) == learned,
            "invariant (b): device {d} learned interest for page \
             {page} on {learned:?}, beyond its physical ports, at {now}"
        );
        if let Some(hp) = policy.holder_port(page) {
            assert!(
                ports_mask.contains(hp),
                "invariant (b): device {d} believes page {page}'s \
                 holder is out port {hp}, which it does not have, at {now}"
            );
        }
        for seg in &policy.pinned_segs(page) {
            assert!(
                seg < segments,
                "invariant (b): device {d} pins page {page} to \
                 nonexistent segment {seg} at {now}"
            );
        }
        let stamps = policy.stamps(page).unwrap_or(&[]);
        assert_eq!(
            stamps.len(),
            nports,
            "invariant (c): device {d} page {page} stamp table does \
             not cover its ports at {now}"
        );
        // (The stamps' *sim-time* component may legitimately sit
        // a frame-flight ahead of the sweep instant — the policy
        // learns at arrival time when the pickup is scheduled —
        // so only the device-local clock is comparable here.)
        for (i, &(sc, _st)) in stamps.iter().enumerate() {
            assert!(
                sc <= clock,
                "invariant (c): device {d} page {page} port-index {i} \
                 demand stamp (clock {sc}) is ahead of the device \
                 clock {clock} at {now}"
            );
        }
        // (c) the home port never ages out of the interest mask.
        if let Some(home) = policy.home_port(page) {
            assert!(
                policy.interest(page, now).contains(home),
                "invariant (c): device {d} aged page {page}'s home \
                 port {home} out of its interest mask at {now}"
            );
        }
        // (b) the newest-generation gate is monotone within one
        // (life, election epoch); a flush resets it and always
        // bumps the epoch, a revival resets the life.
        let life = fabric.restarts(d);
        let epoch = policy.election_epoch();
        if let Some(gen) = policy.newest_gen(page) {
            let key = (d, page.index());
            if let Some(&(sl, se, sg)) = self.device_gens.get(&key) {
                assert!(
                    sl != life || se != epoch || !sg.newer_than(gen),
                    "invariant (b): device {d} page {page} newest-gen \
                     gate went backwards ({sg} -> {gen}) within one \
                     election epoch at {now}"
                );
            }
            self.device_gens.insert(key, (life, epoch, gen));
        } else {
            self.device_gens.remove(&(d, page.index()));
        }
        1 + nports as u64
    }
}

/// Invariant (d) determinism: live devices with identical gossiped
/// views *in the same component* must have elected identical trees.
/// Compare each device against one representative per distinct
/// (views, component) class — view-identical devices separated by a
/// partition legitimately elect their own islands' trees. Returns the
/// number of states scanned.
fn check_tree_consistency(fabric: &Fabric, now: SimTime) -> u64 {
    let topology = fabric.topology();
    let rep: Vec<usize> = (0..fabric.device_count())
        .filter(|&d| !fabric.is_dead(d))
        .collect();
    let mut groups: Vec<usize> = Vec::new();
    for &d in &rep {
        let policy = fabric.device(d).policy();
        if !policy.views()[d].alive {
            continue; // a device dead in its own view elects nothing
        }
        let mut matched = false;
        for &g in &groups {
            let gp = fabric.device(g).policy();
            if gp.views() == policy.views() && same_component(topology, policy.views(), g, d) {
                assert!(
                    gp.active() == policy.active(),
                    "invariant (d): devices {g} and {d} share identical \
                     views and a component but elected different active \
                     trees at {now}"
                );
                matched = true;
                break;
            }
        }
        if !matched {
            groups.push(d);
        }
    }
    (rep.len() * groups.len().max(1) * fabric.device_count()) as u64
}
