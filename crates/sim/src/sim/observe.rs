//! The always-on DSM invariant observer.
//!
//! After PRs 3–6 the protocol state is spread over three layers — host
//! page tables, per-device bridge filters, and the elected fabric —
//! and a contradiction between them (two consistent holders, a belief
//! pointing off the device's own ports, a stamp from the future) can
//! stay latent for thousands of events before it surfaces as a wrong
//! answer. The observer cross-checks the full deployment for such
//! contradictions after event pops, the way scx_model's `Observer`
//! sweeps its kernel state every step.
//!
//! # The invariant catalogue
//!
//! **(a) Page-table / holder agreement** — across all hosts, every page
//! has *at most one* consistent (writable) holder. Not "exactly one":
//! during a consistency transfer the granting side clears its
//! `consistent` bit before the `transfer_to` frame lands, so a page
//! legitimately has zero holders mid-flight (and permanently, if a
//! lossy wire ate the transfer — that is livelock, not corruption).
//! A holder must actually hold a buffer, and each host's generation for
//! a page never moves backwards.
//!
//! **(b) Bridge belief sanity** — a device's believed-holder port, its
//! learned-interest bits, and its post-election hold-downs all name
//! physical ports of that device; pinned segments name segments of the
//! layout. (The belief may legitimately be *stale* — pointing where the
//! holder used to be until the next data transit repairs it — so the
//! structural check is the invariant; chasing accuracy is the belief
//! counters' job.) Per device life and election epoch, the
//! newest-generation gate only moves forward.
//!
//! **(c) Interest-table / age-stamp coherence** — demand stamps never
//! run ahead of the device's forwarded-transit clock or of sim time,
//! and the page's home port is always in the effective interest mask,
//! however old (home ports never age out).
//!
//! **(d) Port-state symmetry and elected-tree consistency** — a
//! device's forwarding ports are a subset of its live ports (dead links
//! never forward), every active-tree next hop leaves through a
//! forwarding port, election epochs only advance within one device
//! life, and two live devices whose gossiped `DeviceView`s agree
//! exactly *and* sit in the same view-induced component have elected
//! identical active trees (the election is a deterministic function of
//! the views, restricted to the electing device's partition — islands
//! of a cut fabric each elect their own tree).
//!
//! **(e) Lane/window invariants** — the serial engine never pops time
//! backwards, and under [`ParallelMode::Workers`](super::ParallelMode)
//! no lane pops an event at or past its window horizon (the lookahead
//! contract); those checks live inline in `sim.rs` / `par.rs`, gated on
//! the same switch as the sweeps here.
//!
//! # Gating and cost
//!
//! The observer is on under `debug_assertions` (so the whole test suite
//! runs swept), forced on/off by `METHER_OBSERVE=1` / `METHER_OBSERVE=0`,
//! and samples every [`Observer::stride`] events. The stride self-tunes:
//! each sweep counts the state it scanned and spaces the next sweep so
//! the amortised cost stays at a few checks per event, whatever the
//! deployment size (`METHER_OBSERVE_EVERY=n` pins it instead; `1`
//! sweeps after every event). A
//! final sweep always runs when a `run` returns, and
//! [`Simulation::check_invariants`](super::Simulation::check_invariants)
//! forces a full sweep regardless of gating — the soak harness calls it
//! in release builds.

use crate::host::HostSim;
use mether_core::{BridgeTopology, DeviceView, Generation, HostMask};
use mether_net::{Fabric, SimTime};
use std::collections::HashMap;

/// True when devices `a` and `b` sit in the same connected component of
/// the fabric graph induced by `views` — alive devices joined through
/// their live ports (physical ∩ view port set).
///
/// The election computes the spanning tree of the *electing device's*
/// component, so two view-identical devices must agree on the tree only
/// when they share a component: after a partition, devices on opposite
/// sides may hold byte-identical views (the same obituaries and port
/// sets, gossiped before the cut or derived independently) yet each
/// correctly elects the tree of its own island.
fn same_component(topology: &BridgeTopology, views: &[DeviceView], a: usize, b: usize) -> bool {
    let nb = topology.bridges();
    let live: Vec<HostMask> = (0..nb)
        .map(|d| {
            let physical: HostMask = topology.ports(d).iter().copied().collect();
            physical.intersection(&views[d].ports)
        })
        .collect();
    let alive: Vec<bool> = (0..nb)
        .map(|d| views[d].alive && !live[d].is_empty())
        .collect();
    if !alive[a] || !alive[b] {
        return false;
    }
    let mut seen_b = vec![false; nb];
    let mut seen_s = vec![false; topology.segments()];
    seen_b[a] = true;
    let mut queue = vec![a];
    while let Some(x) = queue.pop() {
        for s in &live[x] {
            if seen_s[s] {
                continue;
            }
            seen_s[s] = true;
            for (y, seen) in seen_b.iter_mut().enumerate() {
                if !*seen && alive[y] && live[y].contains(s) {
                    *seen = true;
                    queue.push(y);
                }
            }
        }
    }
    seen_b[b]
}

/// Cross-layer invariant checker with monotonicity watermarks.
///
/// The watermarks make the sweeps *temporal*: a generation or election
/// epoch that moves backwards between two sweeps is caught even though
/// each individual snapshot looks self-consistent.
pub(super) struct Observer {
    enabled: bool,
    /// Sweep every `stride` popped events (1 = every event). Unless
    /// pinned by `METHER_OBSERVE_EVERY`, each sweep retunes this from
    /// its own measured size, so the amortised overhead per event stays
    /// bounded whether the deployment is 2 hosts or 1024.
    stride: u64,
    /// A fixed stride from `METHER_OBSERVE_EVERY`, disabling retuning.
    fixed_stride: Option<u64>,
    counter: u64,
    /// Per-(host, page) newest generation seen by any sweep.
    host_gens: HashMap<(usize, u32), Generation>,
    /// Per-(device, page): the device life (restart count), election
    /// epoch, and newest-generation gate at the last sweep. The gate is
    /// only monotone within one (life, epoch) — `flush_port` resets it
    /// so post-reconvergence data may re-teach an older generation, and
    /// every flush bumps the epoch.
    device_gens: HashMap<(usize, u32), (u64, u64, Generation)>,
    /// Per-device (life, election epoch) at the last sweep.
    device_epochs: HashMap<usize, (u64, u64)>,
}

impl Default for Observer {
    fn default() -> Self {
        Observer {
            enabled: false,
            stride: 1,
            fixed_stride: None,
            counter: 0,
            host_gens: HashMap::new(),
            device_gens: HashMap::new(),
            device_epochs: HashMap::new(),
        }
    }
}

impl Observer {
    /// The observer for an `hosts`-host deployment, gated by
    /// `METHER_OBSERVE` / `debug_assertions`; `METHER_OBSERVE_EVERY`
    /// pins the sampling stride (1 = sweep after every event),
    /// otherwise sweeps self-tune their frequency to their measured
    /// cost.
    pub(super) fn from_env(hosts: usize) -> Observer {
        let _ = hosts;
        let enabled = match std::env::var("METHER_OBSERVE") {
            Ok(v) => {
                let v = v.trim();
                !(v == "0" || v.eq_ignore_ascii_case("false") || v.eq_ignore_ascii_case("off"))
            }
            Err(_) => cfg!(debug_assertions),
        };
        let fixed_stride = std::env::var("METHER_OBSERVE_EVERY")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&n| n > 0);
        Observer {
            enabled,
            stride: fixed_stride.unwrap_or(1),
            fixed_stride,
            ..Observer::default()
        }
    }

    /// Whether per-event checks and sweeps are active.
    pub(super) fn enabled(&self) -> bool {
        self.enabled
    }

    /// Counts one popped event; true when a sampled sweep is due.
    pub(super) fn on_event(&mut self) -> bool {
        if !self.enabled {
            return false;
        }
        self.counter += 1;
        self.counter.is_multiple_of(self.stride)
    }

    /// One full sweep of invariants (a)–(d) over the deployment.
    /// Panics with a diagnostic on the first contradiction found.
    pub(super) fn sweep(&mut self, hosts: &[&HostSim], fabric: Option<&Fabric>, now: SimTime) {
        let mut cost = self.sweep_hosts(hosts, now);
        if let Some(fabric) = fabric {
            cost += self.sweep_fabric(fabric, now);
        }
        if self.fixed_stride.is_none() {
            // Space sweeps so their amortised cost lands around a
            // handful of checks per popped event. The floor matters as
            // much as the scaling: even a tiny sweep pays fixed setup
            // (collecting host refs, hash traffic), so sweeping a
            // 2-host spin loop every event would cost 10x the events
            // themselves. A spin-heavy run still gets thousands of
            // sweeps at the floor.
            self.stride = (cost / 8).max(256);
        }
    }

    /// Invariant (a): at most one consistent holder per page across the
    /// deployment, holders have buffers, generations never regress.
    /// Returns the number of (host, page) states scanned.
    fn sweep_hosts(&mut self, hosts: &[&HostSim], now: SimTime) -> u64 {
        let mut cost = hosts.len() as u64;
        // page -> the first holder seen this sweep.
        let mut holder_of: HashMap<u32, usize> = HashMap::new();
        for h in hosts {
            for page in h.table.tracked_pages() {
                cost += 1;
                let idx = page.index();
                if h.table.is_consistent_holder(page) {
                    assert!(
                        h.table.page_buf(page).is_some(),
                        "invariant (a): host {} holds page {page} consistent \
                         without a buffer at {now}",
                        h.index,
                    );
                    if let Some(&other) = holder_of.get(&idx) {
                        panic!(
                            "invariant (a): page {page} has two consistent holders \
                             (hosts {other} and {}) at {now}",
                            h.index,
                        );
                    }
                    holder_of.insert(idx, h.index);
                }
                let gen = h.table.generation(page);
                let key = (h.index, idx);
                if let Some(&seen) = self.host_gens.get(&key) {
                    assert!(
                        !seen.newer_than(gen),
                        "invariant (a): host {} page {page} generation went \
                         backwards ({seen} -> {gen}) at {now}",
                        h.index,
                    );
                }
                self.host_gens.insert(key, gen);
            }
        }
        cost
    }

    /// Invariants (b)–(d) over every live bridge device. Returns the
    /// number of device/page/route states scanned.
    fn sweep_fabric(&mut self, fabric: &Fabric, now: SimTime) -> u64 {
        let topology = fabric.topology();
        let segments = topology.segments();
        let mut cost = 0u64;
        // (views, tree) representatives for the determinism check (d).
        let mut rep: Vec<usize> = Vec::new();
        for d in 0..fabric.device_count() {
            if fabric.is_dead(d) {
                continue;
            }
            let policy = fabric.device(d).policy();
            cost += 1 + segments as u64;
            let ports_mask = policy.ports_mask();
            let live = policy.self_live_ports();
            let fwd = policy.active().forwarding(d);
            // (d) structural: live ⊆ physical, forwarding ⊆ live.
            assert!(
                live.intersection(ports_mask) == live,
                "invariant (d): device {d} live ports {live:?} exceed its \
                 physical ports at {now}"
            );
            assert!(
                fwd.intersection(&live) == fwd,
                "invariant (d): device {d} forwards on {fwd:?} beyond its \
                 live ports {live:?} at {now}"
            );
            // (d) next hops leave through forwarding ports.
            for dst in 0..segments {
                if let Some(hop) = policy.active().next_hop(d, dst) {
                    assert!(
                        fwd.contains(hop),
                        "invariant (d): device {d} routes toward segment {dst} \
                         out port {hop}, which is not forwarding, at {now}"
                    );
                }
            }
            // (d) election epochs only advance within one device life.
            let life = fabric.restarts(d);
            let epoch = policy.election_epoch();
            if let Some(&(seen_life, seen_epoch)) = self.device_epochs.get(&d) {
                assert!(
                    life != seen_life || epoch >= seen_epoch,
                    "invariant (d): device {d} election epoch went backwards \
                     ({seen_epoch} -> {epoch}) within one life at {now}"
                );
            }
            self.device_epochs.insert(d, (life, epoch));
            // (b) hold-downs only cover physical ports.
            let held = policy.held_ports(now);
            assert!(
                held.intersection(ports_mask) == held,
                "invariant (b): device {d} holds down {held:?} beyond its \
                 physical ports at {now}"
            );
            // (b)+(c) per tracked page.
            let nports = topology.ports(d).len();
            let clock = policy.aging_clock();
            for page in policy.tracked_pages() {
                cost += 1 + nports as u64;
                let learned = policy.learned(page);
                assert!(
                    learned.intersection(ports_mask) == learned,
                    "invariant (b): device {d} learned interest for page \
                     {page} on {learned:?}, beyond its physical ports, at {now}"
                );
                if let Some(hp) = policy.holder_port(page) {
                    assert!(
                        ports_mask.contains(hp),
                        "invariant (b): device {d} believes page {page}'s \
                         holder is out port {hp}, which it does not have, at {now}"
                    );
                }
                for seg in &policy.pinned_segs(page) {
                    assert!(
                        seg < segments,
                        "invariant (b): device {d} pins page {page} to \
                         nonexistent segment {seg} at {now}"
                    );
                }
                let stamps = policy.stamps(page).unwrap_or(&[]);
                assert_eq!(
                    stamps.len(),
                    nports,
                    "invariant (c): device {d} page {page} stamp table does \
                     not cover its ports at {now}"
                );
                // (The stamps' *sim-time* component may legitimately sit
                // a frame-flight ahead of the sweep instant — the policy
                // learns at arrival time when the pickup is scheduled —
                // so only the device-local clock is comparable here.)
                for (i, &(sc, _st)) in stamps.iter().enumerate() {
                    assert!(
                        sc <= clock,
                        "invariant (c): device {d} page {page} port-index {i} \
                         demand stamp (clock {sc}) is ahead of the device \
                         clock {clock} at {now}"
                    );
                }
                // (c) the home port never ages out of the interest mask.
                if let Some(home) = policy.home_port(page) {
                    assert!(
                        policy.interest(page, now).contains(home),
                        "invariant (c): device {d} aged page {page}'s home \
                         port {home} out of its interest mask at {now}"
                    );
                }
                // (b) the newest-generation gate is monotone within one
                // (life, election epoch); a flush resets it and always
                // bumps the epoch, a revival resets the life.
                if let Some(gen) = policy.newest_gen(page) {
                    let key = (d, page.index());
                    if let Some(&(sl, se, sg)) = self.device_gens.get(&key) {
                        assert!(
                            sl != life || se != epoch || !sg.newer_than(gen),
                            "invariant (b): device {d} page {page} newest-gen \
                             gate went backwards ({sg} -> {gen}) within one \
                             election epoch at {now}"
                        );
                    }
                    self.device_gens.insert(key, (life, epoch, gen));
                } else {
                    self.device_gens.remove(&(d, page.index()));
                }
            }
            rep.push(d);
        }
        // (d) determinism: live devices with identical gossiped views
        // *in the same component* must have elected identical trees.
        // Compare each device against one representative per distinct
        // (views, component) class — view-identical devices separated
        // by a partition legitimately elect their own islands' trees.
        let mut groups: Vec<usize> = Vec::new();
        for &d in &rep {
            let policy = fabric.device(d).policy();
            if !policy.views()[d].alive {
                continue; // a device dead in its own view elects nothing
            }
            let mut matched = false;
            for &g in &groups {
                let gp = fabric.device(g).policy();
                if gp.views() == policy.views() && same_component(topology, policy.views(), g, d) {
                    assert!(
                        gp.active() == policy.active(),
                        "invariant (d): devices {g} and {d} share identical \
                         views and a component but elected different active \
                         trees at {now}"
                    );
                    matched = true;
                    break;
                }
            }
            if !matched {
                groups.push(d);
            }
        }
        cost + (rep.len() * groups.len().max(1) * fabric.device_count()) as u64
    }
}
