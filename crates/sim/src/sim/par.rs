//! Conservative lane-parallel execution of the segmented event engine.
//!
//! # Why this is safe: the lookahead argument
//!
//! PR 3 gave every bridged segment an independent *delivery lane*: its
//! own medium state, loss RNG, and traffic counters. The only way one
//! segment's events influence another segment is through the bridge
//! fabric, and every forwarded frame copy exits its store-and-forward
//! device at `arrival.max(free_at) + forward_delay` — never less than
//! `forward_delay` after the transmit that caused it. That bound is the
//! *lookahead* of classic conservative parallel discrete-event
//! simulation: all events in the window `[T, T + forward_delay)` can be
//! processed lane-by-lane in parallel, because any cross-lane
//! consequence of an event in the window lands at or after the
//! window's end.
//!
//! # The protocol
//!
//! The coordinator repeatedly:
//!
//! 1. finds the globally earliest pending event time `T` and opens the
//!    window `[T, min(T + forward_delay, next control event))`;
//! 2. dispatches each lane with pending events to a worker pool; lanes
//!    process their local heaps (burst ends, deliveries, timers,
//!    retries, and bridge-forward arrivals) strictly in `(time, lane
//!    sequence)` order, *deferring* every bridge interaction as a
//!    recorded pickup;
//! 3. at the barrier, replays the recorded pickups against the shared
//!    fabric in global `(time, lane)` order — reproducing the serial
//!    engine's interleaving of interest learning, store-and-forward
//!    queueing, and fault RNG draws — and schedules the resulting
//!    forwarded copies into their destination lanes (always at or
//!    beyond the window end, per the lookahead bound);
//! 4. runs the fabric control plane (hello ticks, control-frame
//!    deliveries, injected failures) inline between windows, at its
//!    exact event times.
//!
//! # Completion
//!
//! The serial engine stops the instant every application process is
//! done — mid fan-out if need be — and abandons the rest of the heap.
//! A lane cannot see the other lanes' processes, so it *pauses* at the
//! first point where its own processes are all done (re-queueing an
//! interrupted fan-out's remainder at its original heap position). At
//! the barrier: if some lane is still unfinished, the run cannot have
//! completed anywhere inside this window, so paused and already-done
//! lanes simply catch up to the window end. If every lane is done, the
//! completion moment is the *latest* pause `T*`; every other lane
//! re-runs its remaining events strictly before `T*` (the events the
//! serial schedule would still have processed) and the run finishes at
//! `T*` exactly.
//!
//! # Tie-breaking and the shared oracle order
//!
//! A parallel execution cannot reconstruct a global insertion sequence
//! across lanes, so cross-queue ties at one instant follow a *fixed*
//! rule instead: control-plane events first, then lane events in
//! ascending segment order (each lane internally by its own insertion
//! sequence). The serial oracle sorts its one heap by the same
//! `(time, tier, sequence)` key — see [`Ev::tier`](super::Ev) — so
//! exact-instant cross-lane collisions (mirror-image workloads, ticks
//! landing on transmits) resolve identically under both schedules and
//! the determinism suite pins them byte-for-byte.
//!
//! Residual caveats: a forwarded copy is pushed into its destination
//! lane at the window barrier rather than at its serial push point, so
//! its *intra-lane* sequence can differ — observable only if the copy's
//! exit collides with another event of the same lane at the exact same
//! nanosecond. The `max_events` backstop is checked per window rather
//! than per event, and [`EventStats`] (diagnostic only) reflects
//! per-lane accounting.

use super::{DeliveryMode, Ev, EvKind, EventStats, Recipients, RunLimits, RunOutcome, Simulation};
use crate::host::{HostAction, HostSim};
use mether_core::{HostMask, Packet, SegmentLayout};
use mether_net::{ControlOut, EtherSim, Fabric, FabricEvent, SimDuration, SimTime};
use parking_lot::Mutex;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// How [`Simulation::run`] schedules its event processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelMode {
    /// One global event heap, one thread, events strictly in
    /// `(time, tier, insertion sequence)` order — the determinism
    /// oracle.
    #[default]
    Serial,
    /// Per-segment event lanes advance concurrently on a pool of this
    /// many worker threads, synchronized conservatively with lookahead
    /// equal to the bridge forward delay (see the module docs).
    /// Requires an eligible deployment (segmented, ≥ 2 segments,
    /// non-zero forward delay, per-transit delivery); anything else
    /// falls back to the serial schedule. `Workers(0)` and `Workers(1)`
    /// are the serial schedule by definition.
    Workers(usize),
}

impl ParallelMode {
    /// The *default* mode for freshly built simulations: `Serial`
    /// unless the `METHER_WORKERS` environment variable names a worker
    /// count ≥ 2 — the hook CI uses to sweep the whole test suite
    /// through the lane-parallel engine (every eligible deployment goes
    /// parallel; byte-identity with the serial oracle makes that
    /// invisible). An explicit [`Simulation::set_parallel_mode`] always
    /// wins over the environment.
    pub(crate) fn from_env() -> ParallelMode {
        match std::env::var("METHER_WORKERS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n >= 2 => ParallelMode::Workers(n),
                _ => ParallelMode::Serial,
            },
            Err(_) => ParallelMode::Serial,
        }
    }
}

/// Immutable facts every lane needs while processing a window.
#[derive(Clone, Copy)]
struct Env {
    layout: SegmentLayout,
    total_hosts: usize,
    has_fabric: bool,
    /// Whether the invariant observer is on: lanes then assert the
    /// lookahead contract on every pop (invariant (e)).
    observe: bool,
}

/// A deferred bridge interaction: the fabric hears this frame at the
/// barrier, in global time order, exactly as the serial engine would
/// have fed it at event-pop time.
struct Pickup {
    /// The event-pop time the serial engine would have called the
    /// fabric at (the replay sort key).
    t: SimTime,
    /// The segment the frame was transmitted on.
    seg: usize,
    /// When the frame lands on the wire (`delivered_at`).
    arrival: SimTime,
    pkt: Arc<Packet>,
    kind: PickupKind,
}

enum PickupKind {
    /// A host transmit the segment's bridge devices snoop.
    Fresh,
    /// A forwarded copy offered onward to the other devices, excluding
    /// the device that forwarded it.
    Forwarded { from: usize },
}

/// A lane-local event; mirrors the serial [`EvKind`] variants that are
/// local to one segment.
enum LKind {
    BurstEnd {
        host: usize,
    },
    Deliver {
        mask: HostMask,
        pkt: Arc<Packet>,
    },
    /// A forwarded copy exits its device toward this lane's segment.
    BridgeForward {
        from: usize,
        pkt: Arc<Packet>,
    },
    Timer {
        host: usize,
        proc: usize,
    },
    Retry {
        host: usize,
        proc: usize,
        epoch: u64,
    },
    /// One cadence tick of the periodic holder re-broadcast; mirrors
    /// the serial `EvKind::Rebroadcast` arm exactly (queue, kick,
    /// reschedule — in that order, for push-sequence identity).
    Rebroadcast {
        host: usize,
    },
    /// An open-loop arrival is due on `host`; mirrors the serial
    /// `EvKind::OpenArrival` arm exactly (inject, apply, kick,
    /// reschedule — in that order, for push-sequence identity).
    OpenArrival {
        host: usize,
    },
}

struct LEv {
    at: SimTime,
    seq: u64,
    kind: LKind,
}

impl PartialEq for LEv {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for LEv {}
impl PartialOrd for LEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: earliest-first out of std's max-heap.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// How a lane left its last dispatched window.
#[derive(Clone, Copy, PartialEq, Eq)]
enum WindowExit {
    /// Processed everything below the window end.
    Ran,
    /// Paused at the instant its own processes all finished.
    Paused(SimTime),
}

/// One segment's share of the deployment: its hosts, its medium, and
/// its event heap.
struct Lane {
    seg: usize,
    /// Global index of the lane's first host (the layout's blocks are
    /// contiguous).
    lo: usize,
    hosts: Vec<HostSim>,
    ether: EtherSim,
    heap: BinaryHeap<LEv>,
    seq: u64,
    now: SimTime,
    processed: u64,
    stats: EventStats,
    /// Bridge interactions recorded this window, in processing order
    /// (time-nondecreasing within the lane).
    pickups: Vec<Pickup>,
    exit: WindowExit,
}

impl Lane {
    fn push(&mut self, at: SimTime, kind: LKind) {
        let seq = self.seq;
        self.seq += 1;
        self.stats.heap_pushes += 1;
        if matches!(kind, LKind::Deliver { .. }) {
            self.stats.delivery_pushes += 1;
        }
        self.heap.push(LEv { at, seq, kind });
        self.stats.max_heap_depth = self.stats.max_heap_depth.max(self.heap.len());
    }

    fn all_done(&self) -> bool {
        self.hosts.iter().all(HostSim::all_done)
    }

    fn next_at(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    fn kick(&mut self, host: usize) {
        let i = host - self.lo;
        if let Some(end) = self.hosts[i].dispatch(self.now) {
            self.push(end, LKind::BurstEnd { host });
        }
        for (proc, wake_at) in self.hosts[i].take_sleeps() {
            self.push(wake_at, LKind::Timer { host, proc });
        }
        for (proc, fire_at, epoch) in self.hosts[i].take_retries() {
            self.push(fire_at, LKind::Retry { host, proc, epoch });
        }
    }

    /// Mirrors [`Simulation::apply`] for this lane's segment: clock the
    /// frame out on the lane's own medium, schedule the segment-masked
    /// delivery, and record (not apply) the bridge pickup.
    fn apply(&mut self, actions: Vec<HostAction>, env: &Env) {
        for a in actions {
            match a {
                HostAction::Transmit(pkt) => {
                    let from = pkt.from().0 as usize;
                    let tx = self.ether.transmit(self.now, &pkt);
                    if let Some(at) = tx.delivered_at {
                        if env.total_hosts <= 1 {
                            continue; // nobody anywhere to snoop
                        }
                        self.stats.transits += 1;
                        let shared = Arc::new(pkt);
                        let mask = env.layout.members(self.seg).without(from);
                        if !mask.is_empty() {
                            self.push(
                                at,
                                LKind::Deliver {
                                    mask,
                                    pkt: Arc::clone(&shared),
                                },
                            );
                        }
                        if env.has_fabric {
                            self.pickups.push(Pickup {
                                t: self.now,
                                seg: self.seg,
                                arrival: at,
                                pkt: shared,
                                kind: PickupKind::Fresh,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Processes this lane's events strictly before `until`.
    ///
    /// With `pausing` set (phase 1: the lane's own processes are not
    /// yet all done), the lane stops at its own completion transition —
    /// mid fan-out if that is where it happens, re-queueing the
    /// remainder at the interrupted event's original heap position so a
    /// later resume continues exactly there.
    fn run_window(&mut self, until: SimTime, pausing: bool, env: &Env) {
        self.exit = WindowExit::Ran;
        while self.heap.peek().is_some_and(|e| e.at < until) {
            let ev = self.heap.pop().expect("peeked");
            // Invariant (e): no lane event is processed at or past the
            // window horizon (the lookahead contract), and a lane's own
            // time never regresses — a cross-lane push that violated
            // the forward-delay bound would trip one of these.
            if env.observe {
                assert!(
                    ev.at < until,
                    "lane {} popped an event at {} past its window horizon {until}",
                    self.seg,
                    ev.at
                );
                assert!(
                    ev.at >= self.now,
                    "lane {} popped an event at {} after advancing to {}",
                    self.seg,
                    ev.at,
                    self.now
                );
            }
            self.now = ev.at;
            self.processed += 1;
            match ev.kind {
                LKind::BurstEnd { host } => {
                    let actions = self.hosts[host - self.lo].finish_burst(self.now);
                    self.apply(actions, env);
                    self.kick(host);
                }
                LKind::Deliver { mask, pkt } => {
                    // Ascending host order, pausing at the lane's own
                    // completion just as the serial fan-out breaks at
                    // the global one.
                    let mut remaining = mask.clone();
                    for h in &mask {
                        remaining.remove(h);
                        self.hosts[h - self.lo].deliver_packet(self.now, Arc::clone(&pkt));
                        self.kick(h);
                        if pausing && self.all_done() {
                            if !remaining.is_empty() {
                                self.heap.push(LEv {
                                    at: ev.at,
                                    seq: ev.seq,
                                    kind: LKind::Deliver {
                                        mask: remaining,
                                        pkt,
                                    },
                                });
                            }
                            self.exit = WindowExit::Paused(ev.at);
                            return;
                        }
                    }
                    continue; // completion already checked per recipient
                }
                LKind::BridgeForward { from, pkt } => {
                    let tx = self.ether.transmit(self.now, &pkt);
                    if let Some(at) = tx.delivered_at {
                        let mask = env.layout.members(self.seg);
                        self.push(
                            at,
                            LKind::Deliver {
                                mask,
                                pkt: Arc::clone(&pkt),
                            },
                        );
                        if env.has_fabric {
                            self.pickups.push(Pickup {
                                t: self.now,
                                seg: self.seg,
                                arrival: at,
                                pkt,
                                kind: PickupKind::Forwarded { from },
                            });
                        }
                    }
                }
                LKind::Timer { host, proc } => {
                    self.hosts[host - self.lo].timer_fired(proc);
                    self.kick(host);
                }
                LKind::Retry { host, proc, epoch } => {
                    if (proc as u64) >= crate::host::OPEN_WAITER_BASE {
                        let now = self.now;
                        if let Some(actions) =
                            self.hosts[host - self.lo].open_retry_fired(now, proc as u64)
                        {
                            self.apply(actions, env);
                            self.kick(host);
                        }
                    } else if self.hosts[host - self.lo].retry_fired(proc, epoch) {
                        self.kick(host);
                    }
                }
                LKind::Rebroadcast { host } => {
                    let now = self.now;
                    if self.hosts[host - self.lo].queue_holder_rebroadcasts(now) > 0 {
                        self.kick(host);
                    }
                    if let Some(interval) = self.hosts[host - self.lo].holder_rebroadcast_interval()
                    {
                        self.push(now + interval, LKind::Rebroadcast { host });
                    }
                }
                LKind::OpenArrival { host } => {
                    let now = self.now;
                    let actions = self.hosts[host - self.lo].open_arrival(now);
                    self.apply(actions, env);
                    self.kick(host);
                    if let Some(at) = self.hosts[host - self.lo].open_next_at() {
                        self.push(at, LKind::OpenArrival { host });
                    }
                }
            }
            if pausing && self.all_done() {
                self.exit = WindowExit::Paused(self.now);
                return;
            }
        }
    }
}

/// One unit of worker-pool work: run `lane`'s window up to `until`.
struct Task {
    lane: usize,
    until: SimTime,
    pausing: bool,
}

/// One window's worth of lane tasks, handed to the pool as a single
/// shared work list: workers claim tasks through the atomic cursor
/// instead of the coordinator waking each lane individually, so a
/// window costs `min(workers, lanes)` channel round-trips rather than
/// one per dispatched lane (the ROADMAP batch-handoff follow-on;
/// [`EventStats::task_handoffs`] counts the difference).
struct WindowBatch {
    tasks: Vec<Task>,
    next: AtomicUsize,
}

/// The control plane the coordinator runs between windows.
struct Ctrl<'a> {
    heap: BinaryHeap<Ev>,
    /// The hello timer ring, mirroring the serial engine's (see
    /// [`Simulation::hello_ring`] — sorted by construction, shared
    /// `seq` counter, tier-0 merge with the heap).
    ring: VecDeque<(SimTime, u64, usize, u64)>,
    seq: u64,
    stats: EventStats,
    processed: u64,
    fabric: Option<&'a mut Fabric>,
    tick_epochs: &'a mut [u64],
}

impl Ctrl<'_> {
    fn push(&mut self, at: SimTime, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.stats.heap_pushes += 1;
        // Control events are tier 0 by definition (see [`Ev::tier`]).
        self.heap.push(Ev {
            at,
            tier: 0,
            seq,
            kind,
        });
        self.stats.max_heap_depth = self.stats.max_heap_depth.max(self.heap.len());
    }

    /// Schedules one hello tick on the control timer ring.
    fn ring_push(&mut self, at: SimTime, device: usize, epoch: u64) {
        let seq = self.seq;
        self.seq += 1;
        self.stats.control_pushes += 1;
        self.stats.timer_ring_pushes += 1;
        debug_assert!(self.ring.back().is_none_or(|&(due, ..)| due <= at));
        self.ring.push_back((at, seq, device, epoch));
    }

    /// The earliest pending control event time across the heap and the
    /// timer ring.
    fn next_at(&self) -> Option<SimTime> {
        let heap = self.heap.peek().map(|e| e.at);
        let ring = self.ring.front().map(|&(at, ..)| at);
        match (heap, ring) {
            (Some(h), Some(r)) => Some(h.min(r)),
            (h, r) => h.or(r),
        }
    }

    fn transmit_control(&mut self, now: SimTime, out: ControlOut, lanes: &[Mutex<Lane>]) {
        let pkt = Arc::new(out.pkt);
        let tx = lanes[out.seg].lock().ether.transmit(now, &pkt);
        if let Some(at) = tx.delivered_at {
            self.stats.control_pushes += 1;
            self.push(
                at,
                EvKind::ControlDeliver {
                    seg: out.seg,
                    from: out.device,
                    pkt,
                },
            );
        }
    }

    /// Processes every control event queued at exactly `now` — heap and
    /// timer ring merged by `(time, seq)` (all control events are tier
    /// 0); mirrors the corresponding arms of the serial run loop.
    fn run_instant(&mut self, now: SimTime, lanes: &[Mutex<Lane>]) {
        loop {
            let heap_due = self.heap.peek().filter(|e| e.at == now).map(|e| e.seq);
            let ring_due = self
                .ring
                .front()
                .filter(|&&(at, ..)| at == now)
                .map(|&(_, seq, ..)| seq);
            let ring_wins = match (heap_due, ring_due) {
                (None, None) => break,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (Some(h), Some(r)) => r < h,
            };
            let ev = if ring_wins {
                let (at, seq, device, epoch) = self.ring.pop_front().expect("peeked");
                Ev {
                    at,
                    tier: 0,
                    seq,
                    kind: EvKind::BridgeTick { device, epoch },
                }
            } else {
                self.heap.pop().expect("peeked")
            };
            self.processed += 1;
            match ev.kind {
                EvKind::BridgeTick { device, epoch } => {
                    if self.tick_epochs[device] != epoch {
                        continue; // an orphaned chain (the device died)
                    }
                    let Some(fabric) = self.fabric.as_deref_mut() else {
                        continue;
                    };
                    if fabric.is_dead(device) {
                        continue; // BridgeUp reseeds
                    }
                    let outs = fabric.tick(device, now);
                    let interval = fabric.election().hello_interval();
                    for out in outs {
                        self.transmit_control(now, out, lanes);
                    }
                    if let Some(interval) = interval {
                        self.ring_push(now + interval, device, epoch);
                    }
                }
                EvKind::ControlDeliver { seg, from, pkt } => {
                    let outs = self
                        .fabric
                        .as_deref_mut()
                        .map(|f| f.hear_control(&pkt, seg, now, from))
                        .unwrap_or_default();
                    for out in outs {
                        self.transmit_control(now, out, lanes);
                    }
                }
                EvKind::Fabric(fev) => {
                    if let Some(fabric) = self.fabric.as_deref_mut() {
                        let was_dead = match fev {
                            FabricEvent::BridgeDown(d) | FabricEvent::BridgeUp(d) => {
                                fabric.is_dead(d)
                            }
                            FabricEvent::LinkDown { .. } | FabricEvent::LinkUp { .. } => false,
                        };
                        fabric.apply_event(fev, now);
                        match fev {
                            FabricEvent::BridgeDown(d) if !was_dead => {
                                self.tick_epochs[d] += 1;
                            }
                            FabricEvent::BridgeUp(device) if was_dead => {
                                self.tick_epochs[device] += 1;
                                let epoch = self.tick_epochs[device];
                                if let Some(interval) = fabric.election().hello_interval() {
                                    self.ring_push(now + interval, device, epoch);
                                }
                            }
                            _ => {}
                        }
                    }
                }
                // Lane-local kinds never enter the control heap.
                _ => unreachable!("lane event in the control heap"),
            }
        }
    }

    /// Replays every bridge interaction the lanes recorded this window
    /// against the shared fabric, in global `(time, lane)` order, and
    /// schedules the resulting forwarded copies into their destination
    /// lanes. The lookahead bound guarantees every scheduled exit lands
    /// at or beyond the window end.
    fn replay_pickups(&mut self, lanes: &[Mutex<Lane>]) {
        let mut all: Vec<(usize, Pickup)> = Vec::new();
        for (i, lane) in lanes.iter().enumerate() {
            let mut lane = lane.lock();
            all.extend(lane.pickups.drain(..).map(|p| (i, p)));
        }
        if all.is_empty() {
            return;
        }
        // Stable: within a lane the recorded order is the processing
        // (time) order, so (t, lane) reproduces the serial interleaving
        // up to exact-instant cross-lane ties.
        all.sort_by_key(|(lane, p)| (p.t, *lane));
        let Some(fabric) = self.fabric.as_deref_mut() else {
            return;
        };
        for (_, p) in all {
            let fws = match p.kind {
                PickupKind::Fresh => fabric.pickup(&p.pkt, p.seg, p.arrival),
                PickupKind::Forwarded { from } => {
                    fabric.pickup_forwarded(&p.pkt, p.seg, p.arrival, from)
                }
            };
            for fw in fws {
                self.stats.bridge_pushes += 1;
                lanes[fw.dst].lock().push(
                    fw.exit,
                    LKind::BridgeForward {
                        from: fw.device,
                        pkt: Arc::clone(&p.pkt),
                    },
                );
            }
        }
    }
}

/// Runs one window's `batch` of lane tasks and waits for all of them;
/// returns the number of pool handoffs performed. A single-task batch
/// runs inline on the coordinator (the window has no parallelism to
/// exploit, so skip the channel round-trip); a larger batch is shared
/// with `min(pool_size, tasks)` workers as one [`WindowBatch`] they
/// drain through its claim cursor — per-window handoff, not per-lane
/// wakeups.
fn run_batch(
    lanes: &[Mutex<Lane>],
    env: &Env,
    task_tx: &crossbeam::channel::Sender<Arc<WindowBatch>>,
    done_rx: &crossbeam::channel::Receiver<()>,
    pool_size: usize,
    batch: Vec<Task>,
) -> u64 {
    if batch.is_empty() {
        return 0;
    }
    if batch.len() == 1 {
        let t = &batch[0];
        lanes[t.lane].lock().run_window(t.until, t.pausing, env);
        return 1;
    }
    let wakeups = pool_size.min(batch.len());
    let shared = Arc::new(WindowBatch {
        tasks: batch,
        next: AtomicUsize::new(0),
    });
    for _ in 0..wakeups {
        let _ = task_tx.send(Arc::clone(&shared));
    }
    // Every claimed task is finished before its claimer acknowledges,
    // so `wakeups` acks mean the whole batch ran.
    for _ in 0..wakeups {
        let _ = done_rx.recv();
    }
    wakeups as u64
}

impl Simulation {
    /// Whether this deployment can run the lane-parallel schedule: it
    /// needs at least two segments (otherwise there is nothing to
    /// partition), a fabric with non-zero forward delay (the lookahead),
    /// per-transit delivery (the compat schedule exists only to pin the
    /// serial oracle), and at least one unfinished process (the serial
    /// loop's degenerate start-up semantics are not worth replicating).
    pub(super) fn parallel_eligible(&self) -> bool {
        self.layout.is_some()
            && self.segments.len() >= 2
            && self.delivery == DeliveryMode::PerTransit
            && self
                .fabric
                .as_ref()
                .is_some_and(|f| f.forward_delay() > SimDuration::ZERO)
            && !self.hosts.iter().all(HostSim::all_done)
    }

    /// The conservative lane-parallel run loop (see the module docs for
    /// the protocol). Only called on an eligible deployment.
    pub(super) fn run_parallel(&mut self, limits: RunLimits, workers: usize) -> RunOutcome {
        let layout = self.layout.expect("eligibility checked");
        let mut observer = std::mem::take(&mut self.observer);
        let env = Env {
            layout,
            total_hosts: self.hosts.len(),
            has_fabric: self.fabric.is_some(),
            observe: observer.enabled(),
        };
        let lookahead = self
            .fabric
            .as_ref()
            .map(Fabric::forward_delay)
            .expect("eligibility checked");
        let deadline = SimTime::ZERO + limits.max_sim_time;

        // Seed the per-device hello ticks exactly as the serial engine
        // would, then partition the queued events.
        if !self.ticks_started {
            self.ticks_started = true;
            if let Some(fabric) = self.fabric.as_ref() {
                if let Some(interval) = fabric.election().hello_interval() {
                    for device in 0..fabric.device_count() {
                        let epoch = self.tick_epochs[device];
                        self.ring_push(self.now + interval, device, epoch);
                    }
                }
            }
            // Seed the periodic holder re-broadcast chains exactly as
            // the serial engine would (pushed here, routed to lanes in
            // the partition below).
            for host in 0..self.hosts.len() {
                if let Some(interval) = self.hosts[host].holder_rebroadcast_interval() {
                    self.push(self.now + interval, EvKind::Rebroadcast { host });
                }
            }
            // Seed the open-loop arrival chains exactly as the serial
            // engine would.
            for host in 0..self.hosts.len() {
                if let Some(at) = self.hosts[host].open_next_at() {
                    self.push(at, EvKind::OpenArrival { host });
                }
            }
        }

        // Partition hosts (contiguous layout blocks) and media into
        // lanes.
        let nseg = self.segments.len();
        let mut host_pool = std::mem::take(&mut self.hosts);
        let mut blocks: Vec<Vec<HostSim>> = Vec::with_capacity(nseg);
        for seg in (0..nseg).rev() {
            blocks.push(host_pool.split_off(layout.members_range(seg).start));
        }
        blocks.reverse();
        let ethers = std::mem::take(&mut self.segments);
        let lanes: Vec<Mutex<Lane>> = ethers
            .into_iter()
            .zip(blocks)
            .enumerate()
            .map(|(seg, (ether, hosts))| {
                Mutex::new(Lane {
                    seg,
                    lo: layout.members_range(seg).start,
                    hosts,
                    ether,
                    heap: BinaryHeap::new(),
                    seq: 0,
                    now: self.now,
                    processed: 0,
                    stats: EventStats::default(),
                    pickups: Vec::new(),
                    exit: WindowExit::Ran,
                })
            })
            .collect();

        // Route queued events (fabric injections; a previous run's
        // leftovers) to their owning queue, preserving order.
        let mut fabric = self.fabric.take();
        let mut tick_epochs = std::mem::take(&mut self.tick_epochs);
        let mut ctrl = Ctrl {
            heap: BinaryHeap::new(),
            ring: VecDeque::new(),
            seq: 0,
            stats: EventStats::default(),
            processed: 0,
            fabric: fabric.as_mut(),
            tick_epochs: &mut tick_epochs,
        };
        let mut queued: Vec<Ev> = std::mem::take(&mut self.events).drain().collect();
        // Fold the serial hello ring into the routing pass: its entries
        // carry seqs from the same counter as the heap's, so one sort
        // restores the global `(time, tier, seq)` order and routing in
        // that order keeps the control ring sorted.
        for (at, seq, device, epoch) in std::mem::take(&mut self.hello_ring) {
            queued.push(Ev {
                at,
                tier: 0,
                seq,
                kind: EvKind::BridgeTick { device, epoch },
            });
        }
        queued.sort_by_key(|e| (e.at, e.tier, e.seq));
        for ev in queued {
            match ev.kind {
                EvKind::BurstEnd { host } => {
                    lanes[layout.segment_of(host)]
                        .lock()
                        .push(ev.at, LKind::BurstEnd { host });
                }
                EvKind::Timer { host, proc } => {
                    lanes[layout.segment_of(host)]
                        .lock()
                        .push(ev.at, LKind::Timer { host, proc });
                }
                EvKind::Retry { host, proc, epoch } => {
                    lanes[layout.segment_of(host)]
                        .lock()
                        .push(ev.at, LKind::Retry { host, proc, epoch });
                }
                EvKind::Rebroadcast { host } => {
                    lanes[layout.segment_of(host)]
                        .lock()
                        .push(ev.at, LKind::Rebroadcast { host });
                }
                EvKind::OpenArrival { host } => {
                    lanes[layout.segment_of(host)]
                        .lock()
                        .push(ev.at, LKind::OpenArrival { host });
                }
                EvKind::Deliver { to, pkt } => {
                    // Leftover deliveries land as segment-local masks;
                    // a mask from the serial engine is always one
                    // segment's members.
                    let mask = to.to_mask(env.total_hosts);
                    for (seg, lane) in lanes.iter().enumerate().take(nseg) {
                        let local = mask.intersection(&layout.members(seg));
                        if !local.is_empty() {
                            lane.lock().push(
                                ev.at,
                                LKind::Deliver {
                                    mask: local,
                                    pkt: Arc::clone(&pkt),
                                },
                            );
                        }
                    }
                }
                EvKind::BridgeForward { from, dst, pkt } => {
                    lanes[dst]
                        .lock()
                        .push(ev.at, LKind::BridgeForward { from, pkt });
                }
                EvKind::BridgeTick { device, epoch } => {
                    ctrl.ring_push(ev.at, device, epoch);
                }
                EvKind::ControlDeliver { .. } | EvKind::Fabric(_) => {
                    ctrl.push(ev.at, ev.kind);
                }
            }
        }

        // Initial dispatch, same order as the serial loop: ascending
        // host index (lanes are contiguous ascending blocks).
        for lane in &lanes {
            let mut lane = lane.lock();
            for host in lane.lo..lane.lo + lane.hosts.len() {
                lane.kick(host);
            }
        }

        let mut finished = false;
        let mut final_now = self.now;
        let pool_size = workers.min(nseg).max(1);
        let (task_tx, task_rx) = crossbeam::channel::unbounded::<Arc<WindowBatch>>();
        let (done_tx, done_rx) = crossbeam::channel::unbounded::<()>();
        let lanes_ref = &lanes;
        let env_ref = &env;
        std::thread::scope(|s| {
            for _ in 0..pool_size {
                let task_rx = &task_rx;
                let done_tx = &done_tx;
                s.spawn(move || {
                    while let Ok(batch) = task_rx.recv() {
                        loop {
                            let i = batch.next.fetch_add(1, Ordering::Relaxed);
                            let Some(t) = batch.tasks.get(i) else { break };
                            lanes_ref[t.lane]
                                .lock()
                                .run_window(t.until, t.pausing, env_ref);
                        }
                        if done_tx.send(()).is_err() {
                            break;
                        }
                    }
                });
            }
            let task_tx = task_tx; // moved in: dropped on loop exit, stopping the pool
            loop {
                // The globally earliest pending event.
                let mut next_lane: Option<SimTime> = None;
                for lane in lanes_ref {
                    if let Some(t) = lane.lock().next_at() {
                        next_lane = Some(next_lane.map_or(t, |m| m.min(t)));
                    }
                }
                let next_ctrl = ctrl.next_at();
                let Some(next) = [next_lane, next_ctrl].into_iter().flatten().min() else {
                    break; // both queues drained
                };
                if next > deadline {
                    final_now = final_now.max(next);
                    break;
                }
                let mut processed_total = ctrl.processed;
                for lane in lanes_ref {
                    processed_total += lane.lock().processed;
                }
                if processed_total >= limits.max_events {
                    final_now = final_now.max(next);
                    break;
                }
                // Control plane first at an equal instant (serial ties
                // resolve by sequence; see the module docs).
                if next_ctrl.is_some_and(|c| c <= next_lane.unwrap_or(c)) {
                    let c = next_ctrl.expect("checked");
                    ctrl.run_instant(c, lanes_ref);
                    final_now = final_now.max(c);
                    continue;
                }
                // Open the window.
                let mut t_end = next + lookahead;
                if let Some(c) = next_ctrl {
                    t_end = t_end.min(c);
                }
                t_end = t_end.min(deadline + SimDuration::from_nanos(1));
                // Phase 1: lanes with unfinished processes run ahead,
                // pausing at their own completion transition.
                let mut batch = Vec::new();
                for (i, lane) in lanes_ref.iter().enumerate() {
                    let lane = lane.lock();
                    if !lane.all_done() && lane.next_at().is_some_and(|t| t < t_end) {
                        batch.push(Task {
                            lane: i,
                            until: t_end,
                            pausing: true,
                        });
                    }
                }
                ctrl.stats.task_handoffs +=
                    run_batch(lanes_ref, env_ref, &task_tx, &done_rx, pool_size, batch);
                let mut all_done = true;
                let mut paused: Vec<(usize, SimTime)> = Vec::new();
                for (i, lane) in lanes_ref.iter().enumerate() {
                    let mut lane = lane.lock();
                    if let WindowExit::Paused(at) = lane.exit {
                        paused.push((i, at));
                        lane.exit = WindowExit::Ran;
                    }
                    if !lane.all_done() {
                        all_done = false;
                    }
                    final_now = final_now.max(lane.now);
                }
                if all_done {
                    // The run completed inside this window, at the last
                    // lane's transition. Other lanes re-run the events
                    // the serial schedule would still have processed
                    // (strictly before T*), then everything stops.
                    let (completer, t_star) = paused
                        .iter()
                        .copied()
                        .max_by_key(|&(i, at)| (at, i))
                        .expect("an all-done barrier follows a completion transition");
                    let mut batch = Vec::new();
                    for (i, lane) in lanes_ref.iter().enumerate() {
                        if i == completer {
                            continue;
                        }
                        if lane.lock().next_at().is_some_and(|t| t < t_star) {
                            batch.push(Task {
                                lane: i,
                                until: t_star,
                                pausing: false,
                            });
                        }
                    }
                    ctrl.stats.task_handoffs +=
                        run_batch(lanes_ref, env_ref, &task_tx, &done_rx, pool_size, batch);
                    ctrl.replay_pickups(lanes_ref);
                    final_now = t_star;
                    finished = true;
                    break;
                }
                // Phase 2: some lane is still unfinished, so nothing
                // stops inside this window — paused and already-done
                // lanes catch up to the window end.
                let mut batch = Vec::new();
                for (i, lane) in lanes_ref.iter().enumerate() {
                    let lane = lane.lock();
                    if lane.all_done() && lane.next_at().is_some_and(|t| t < t_end) {
                        batch.push(Task {
                            lane: i,
                            until: t_end,
                            pausing: false,
                        });
                    }
                }
                if !batch.is_empty() {
                    ctrl.stats.task_handoffs +=
                        run_batch(lanes_ref, env_ref, &task_tx, &done_rx, pool_size, batch);
                    for lane in lanes_ref {
                        final_now = final_now.max(lane.lock().now);
                    }
                }
                ctrl.replay_pickups(lanes_ref);
                // The window barrier is the one point where no lane is
                // mid-flight, so the cross-layer state is globally
                // consistent: run the sampled invariant sweep here
                // (invariants (a)–(d); a full sweep also runs after the
                // lanes reassemble at the end of the run).
                if observer.on_event() {
                    let mut guards: Vec<_> = lanes_ref.iter().map(|l| l.lock()).collect();
                    let mut hosts: Vec<&mut HostSim> =
                        guards.iter_mut().flat_map(|g| g.hosts.iter_mut()).collect();
                    observer.sweep_sampled(&mut hosts, ctrl.fabric.as_deref_mut(), final_now);
                }
            }
        });

        // Reassemble the deployment: hosts and media back in place,
        // remaining events re-merged in `(time, tier, sequence)` order —
        // the engine's cross-queue tie rule.
        let mut processed_total = ctrl.processed;
        let mut leftovers: Vec<(SimTime, u16, u64, usize, LKind)> = Vec::new();
        self.lane_events.clear();
        for (i, lane) in lanes.into_iter().enumerate() {
            let mut lane = lane.into_inner();
            processed_total += lane.processed;
            self.lane_events.push(lane.processed);
            self.ev_stats.heap_pushes += lane.stats.heap_pushes;
            self.ev_stats.delivery_pushes += lane.stats.delivery_pushes;
            self.ev_stats.bridge_pushes += lane.stats.bridge_pushes;
            self.ev_stats.control_pushes += lane.stats.control_pushes;
            self.ev_stats.transits += lane.stats.transits;
            self.ev_stats.max_heap_depth =
                self.ev_stats.max_heap_depth.max(lane.stats.max_heap_depth);
            for ev in lane.heap.drain() {
                leftovers.push((ev.at, 1 + i as u16, ev.seq, lane.seg, ev.kind));
            }
            self.hosts.append(&mut lane.hosts);
            self.segments.push(lane.ether);
        }
        self.ev_stats.heap_pushes += ctrl.stats.heap_pushes;
        self.ev_stats.bridge_pushes += ctrl.stats.bridge_pushes;
        self.ev_stats.control_pushes += ctrl.stats.control_pushes;
        self.ev_stats.timer_ring_pushes += ctrl.stats.timer_ring_pushes;
        self.ev_stats.task_handoffs += ctrl.stats.task_handoffs;
        self.ev_stats.max_heap_depth = self.ev_stats.max_heap_depth.max(ctrl.stats.max_heap_depth);
        let mut merged: Vec<(SimTime, u16, u64, EvKind)> = Vec::new();
        for ev in ctrl.heap.drain() {
            merged.push((ev.at, 0, ev.seq, ev.kind));
        }
        for (at, seq, device, epoch) in ctrl.ring.drain(..) {
            merged.push((at, 0, seq, EvKind::BridgeTick { device, epoch }));
        }
        for (at, tier, seq, seg, kind) in leftovers {
            let kind = match kind {
                LKind::BurstEnd { host } => EvKind::BurstEnd { host },
                LKind::Deliver { mask, pkt } => EvKind::Deliver {
                    to: Recipients::Subset(mask),
                    pkt,
                },
                LKind::BridgeForward { from, pkt } => EvKind::BridgeForward {
                    from,
                    dst: seg,
                    pkt,
                },
                LKind::Timer { host, proc } => EvKind::Timer { host, proc },
                LKind::Retry { host, proc, epoch } => EvKind::Retry { host, proc, epoch },
                LKind::Rebroadcast { host } => EvKind::Rebroadcast { host },
                LKind::OpenArrival { host } => EvKind::OpenArrival { host },
            };
            merged.push((at, tier, seq, kind));
        }
        merged.sort_by_key(|&(at, tier, seq, _)| (at, tier, seq));
        for (at, _, _, kind) in merged {
            let tier = self.tier_of(&kind);
            let seq = self.seq;
            self.seq += 1;
            self.events.push(Ev {
                at,
                tier,
                seq,
                kind,
            });
        }
        drop(ctrl);
        self.fabric = fabric;
        self.tick_epochs = tick_epochs;
        self.now = final_now;
        self.observer = observer;
        if self.observer.enabled() {
            self.check_invariants();
        }
        RunOutcome {
            finished,
            wall: final_now - SimTime::ZERO,
            events: processed_total,
        }
    }
}
