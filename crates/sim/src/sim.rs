//! The discrete-event simulation driver.
//!
//! A [`Simulation`] owns the hosts and the Ethernet, and advances virtual
//! time through a single event heap. Three event kinds exist: a host CPU
//! finishing its current burst, a packet arriving at a host, and a sleep
//! timer firing. Determinism: events at equal times are ordered by
//! insertion sequence, and all randomness (loss injection) flows from the
//! seed in [`mether_net::EtherConfig`].

use crate::calib::Calib;
use crate::host::{HostAction, HostSim};
use crate::metrics::ProtocolMetrics;
use crate::process::Workload;
use mether_core::{MetherConfig, Packet, PageId};
use mether_net::{EtherConfig, EtherSim, SimDuration, SimTime};
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Static description of a simulated deployment.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of workstations on the segment.
    pub hosts: usize,
    /// Host-side cost model.
    pub calib: Calib,
    /// Network model parameters.
    pub ether: EtherConfig,
    /// Mether page configuration.
    pub mether: MetherConfig,
}

impl SimConfig {
    /// The paper's testbed: `n` Sun-3/50s on a 10 Mbit/s Ethernet.
    pub fn paper(n: usize) -> Self {
        SimConfig {
            hosts: n,
            calib: Calib::sun3_sunos4(),
            ether: EtherConfig::ten_megabit(),
            mether: MetherConfig::new(),
        }
    }
}

/// Caps on a run, so degenerate protocols (Figure 6) terminate.
#[derive(Debug, Clone, Copy)]
pub struct RunLimits {
    /// Stop after this much virtual time.
    pub max_sim_time: SimDuration,
    /// Stop after this many events (backstop against livelock).
    pub max_events: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            max_sim_time: SimDuration::from_secs(600),
            max_events: 200_000_000,
        }
    }
}

/// Result summary of [`Simulation::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// True if every application process exited before the limits.
    pub finished: bool,
    /// Virtual time when the run stopped.
    pub wall: SimDuration,
    /// Events processed.
    pub events: u64,
}

#[derive(Debug)]
enum EvKind {
    BurstEnd {
        host: usize,
    },
    /// One broadcast, delivered to every host as a shared reference: the
    /// packet (and its page payload) is materialised once per transit,
    /// not once per snooping host.
    PacketArrive {
        host: usize,
        pkt: Arc<Packet>,
    },
    Timer {
        host: usize,
        proc: usize,
    },
}

struct Ev {
    at: SimTime,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// A complete simulated deployment, ready to run.
pub struct Simulation {
    hosts: Vec<HostSim>,
    ether: EtherSim,
    events: BinaryHeap<Ev>,
    seq: u64,
    now: SimTime,
}

impl Simulation {
    /// Builds a quiet deployment from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.hosts` is zero.
    pub fn new(cfg: SimConfig) -> Self {
        assert!(cfg.hosts > 0, "a simulation needs at least one host");
        let hosts = (0..cfg.hosts)
            .map(|i| HostSim::new(i, cfg.calib.clone(), cfg.mether.clone()))
            .collect();
        Simulation {
            hosts,
            ether: EtherSim::new(cfg.ether),
            events: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Adds an application process to `host`; returns its process index.
    pub fn add_process(&mut self, host: usize, workload: Box<dyn Workload>) -> usize {
        self.hosts[host].add_process(workload)
    }

    /// Seeds `page` as created (consistent) on `host`.
    pub fn create_owned(&mut self, host: usize, page: PageId) {
        self.hosts[host].table.create_owned(page);
    }

    /// Immutable access to a host (metrics, page table inspection).
    pub fn host(&self, i: usize) -> &HostSim {
        &self.hosts[i]
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Network traffic so far.
    pub fn net_stats(&self) -> mether_net::NetStats {
        *self.ether.stats()
    }

    fn push(&mut self, at: SimTime, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Ev { at, seq, kind });
    }

    /// Dispatches `host` if its CPU is idle, scheduling the burst end and
    /// any sleep timers it requested.
    fn kick(&mut self, host: usize) {
        if let Some(end) = self.hosts[host].dispatch(self.now) {
            self.push(end, EvKind::BurstEnd { host });
        }
        for (proc, wake_at) in self.hosts[host].take_sleeps() {
            self.push(wake_at, EvKind::Timer { host, proc });
        }
    }

    fn apply(&mut self, actions: Vec<HostAction>) {
        for a in actions {
            match a {
                HostAction::Transmit(pkt) => {
                    let tx = self.ether.transmit(self.now, &pkt);
                    if let Some(at) = tx.delivered_at {
                        // Fan out one shared packet to the N−1 snooping
                        // hosts: each arrival event costs a refcount bump,
                        // never a payload copy.
                        let from = pkt.from().0 as usize;
                        let shared = Arc::new(pkt);
                        for h in 0..self.hosts.len() {
                            if h != from {
                                self.push(
                                    at,
                                    EvKind::PacketArrive {
                                        host: h,
                                        pkt: Arc::clone(&shared),
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Runs until every process is done or a limit trips.
    pub fn run(&mut self, limits: RunLimits) -> RunOutcome {
        let deadline = SimTime::ZERO + limits.max_sim_time;
        let mut processed: u64 = 0;
        for h in 0..self.hosts.len() {
            self.kick(h);
        }
        while let Some(ev) = self.events.pop() {
            if ev.at > deadline || processed >= limits.max_events {
                self.now = self.now.max(ev.at.max(deadline));
                return RunOutcome {
                    finished: false,
                    wall: self.now - SimTime::ZERO,
                    events: processed,
                };
            }
            processed += 1;
            self.now = ev.at;
            match ev.kind {
                EvKind::BurstEnd { host } => {
                    let actions = self.hosts[host].finish_burst(self.now);
                    self.apply(actions);
                    self.kick(host);
                }
                EvKind::PacketArrive { host, pkt } => {
                    self.hosts[host].deliver_packet(self.now, pkt);
                    self.kick(host);
                }
                EvKind::Timer { host, proc } => {
                    self.hosts[host].timer_fired(proc);
                    self.kick(host);
                }
            }
            if self.hosts.iter().all(HostSim::all_done) {
                return RunOutcome {
                    finished: true,
                    wall: self.now - SimTime::ZERO,
                    events: processed,
                };
            }
        }
        RunOutcome {
            finished: self.hosts.iter().all(HostSim::all_done),
            wall: self.now - SimTime::ZERO,
            events: processed,
        }
    }

    /// Aggregates a finished (or capped) run into the paper's table
    /// format. `space_pages` is the protocol's Mether footprint (the
    /// paper's "Space" row).
    pub fn metrics(&self, label: &str, finished: bool, space_pages: u32) -> ProtocolMetrics {
        let wall = self.now - SimTime::ZERO;
        let nhosts = self.hosts.len().max(1) as u64;
        let mut user = SimDuration::ZERO;
        let mut sys = SimDuration::ZERO;
        let mut losses = 0;
        let mut wins = 0;
        let mut additions = 0;
        let mut ctx = 0;
        let mut lat_sum = SimDuration::ZERO;
        let mut lat_n: u64 = 0;
        let mut max_q = 0;
        for h in &self.hosts {
            for i in 0..h.proc_count() {
                let t = h.times(i);
                user += t.user;
                sys += t.sys;
                let c = h.counters(i);
                losses += c.losses;
                wins += c.wins;
                additions += c.operations;
            }
            sys += h.server_time;
            ctx += h.ctx_switches;
            for l in &h.fault_latencies {
                lat_sum += *l;
                lat_n += 1;
            }
            max_q = max_q.max(h.max_server_queue);
        }
        let net = self.net_stats();
        let wall_secs = wall.as_secs_f64();
        ProtocolMetrics {
            label: label.to_string(),
            finished,
            wall,
            user: SimDuration::from_nanos(user.as_nanos() / nhosts),
            sys: SimDuration::from_nanos(sys.as_nanos() / nhosts),
            net,
            net_load_bps: net.load_bytes_per_sec(wall_secs),
            bytes_per_addition: if additions == 0 {
                f64::NAN
            } else {
                net.bytes as f64 / additions as f64
            },
            ctx_switches: ctx,
            ctx_per_addition: if additions == 0 {
                f64::NAN
            } else {
                ctx as f64 / additions as f64
            },
            avg_latency: SimDuration::from_nanos(
                lat_sum.as_nanos().checked_div(lat_n).unwrap_or(0),
            ),
            losses,
            wins,
            additions,
            space_pages,
            max_server_queue: max_q,
        }
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Simulation(hosts={}, now={}, queued={})",
            self.hosts.len(),
            self.now,
            self.events.len()
        )
    }
}
