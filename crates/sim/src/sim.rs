//! The discrete-event simulation driver.
//!
//! A [`Simulation`] owns the hosts and the Ethernet, and advances virtual
//! time through a single event heap. Three event kinds exist: a host CPU
//! finishing its current burst, a packet transit completing delivery, and
//! a sleep timer firing. Determinism: events at equal times are ordered
//! by a monotonic insertion sequence (same-tick pops are insertion-order,
//! never arbitrary), and all randomness (loss injection) flows from the
//! seed in [`mether_net::EtherConfig`].
//!
//! # Per-transit delivery
//!
//! The paper's central cost argument is that a broadcast DSM keeps host
//! load constant because *the network does the fan-out*: one frame on the
//! Ethernet updates every snooping host, and no machine performs
//! per-recipient work to make that happen. The event engine mirrors this:
//! one broadcast is **one** [`Deliver`](Recipients) event carrying one
//! `Arc<Packet>` plus a [`Recipients`] set, fanned out to the snooping
//! hosts at pop time. The heap holds O(transits) events rather than
//! O(transits × hosts) — on a 16-host broadcast-heavy run the heap (and
//! the push/sift work feeding it) shrinks ~15×, which is exactly the
//! steady-state O(1)-per-broadcast behaviour the paper claims for its
//! hosts. [`DeliveryMode::PerHostCompat`] preserves the old
//! one-event-per-recipient schedule solely so regression tests can pin
//! the two orderings to identical outcomes.
//!
//! # Multi-segment topologies
//!
//! A [`Topology::Segmented`] deployment splits the hosts into contiguous
//! blocks ([`mether_core::SegmentLayout`]), one bridged Ethernet segment
//! per block. The event engine gives each segment its own *delivery
//! lane*: an independent [`EtherSim`] instance per segment (own carrier
//! state, own loss RNG, own [`mether_net::NetStats`]) feeding the one
//! shared time heap — so two segments clock frames out concurrently in
//! simulated time instead of serialising on a single medium, while
//! event ordering stays globally deterministic.
//!
//! A transit on segment *s* becomes one `Deliver` event whose
//! [`Recipients::Subset`] is *s*'s member bitmask (minus the sender):
//! exactly one segment's snoopers hear it, never the whole cluster. The
//! frame is simultaneously picked up by every bridge device attached to
//! *s* — the routed fabric of [`mether_net::bridge`], a tree of
//! store-and-forward devices whose per-device filters (page homes,
//! learned interest with optional aging, flooded or holder-directed
//! requests) decide which of their ports must hear it. Each forwarded
//! copy is a `BridgeForward` event carrying its device: at the device's
//! exit time the copy is transmitted on the destination segment's own
//! medium (queueing there like any local frame), fans out to that
//! segment's members, and is offered to the *other* devices on that
//! segment, which carry it further along the tree — each device gets
//! its own event lane (engine state, backlog, [`BridgeStats`]). The
//! forwarding device itself is excluded from that pickup, and the
//! topology is a tree, so no forwarding walk can revisit a segment: no
//! loop is possible by construction.

use crate::calib::Calib;
use crate::hist::LatencyHistogram;
use crate::host::{ArrivalStream, HostAction, HostSim};
use crate::metrics::ProtocolMetrics;
use crate::process::Workload;
use mether_core::table::WaiterId;
use mether_core::{HostMask, MetherConfig, Packet, PageId, SegmentLayout};
use mether_net::{
    BridgeStats, ControlOut, EtherConfig, EtherSim, Fabric, FabricConfig, FabricEvent, SimDuration,
    SimTime,
};
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

mod observe;
mod par;

pub use observe::ObserverStats;
pub use par::ParallelMode;

/// How the deployment's hosts are wired together.
#[derive(Debug, Clone, Default)]
pub enum Topology {
    /// Every host on one shared broadcast segment — the paper's testbed.
    #[default]
    Flat,
    /// The hosts split over several bridged Ethernet segments (contiguous
    /// blocks, per [`mether_core::SegmentLayout`]), joined by a routed
    /// tree of filtering store-and-forward bridge devices.
    Segmented {
        /// The bridge fabric: topology (star/chain/tree/ring/mesh),
        /// per-device engine knobs, page homes, request routing,
        /// interest aging, election mode. The segment count is
        /// `fabric.topology.segments()` (`1..=hosts`; a 1-segment
        /// topology is behaviourally identical to [`Topology::Flat`]
        /// but exercises the masked delivery path — the equivalence is
        /// regression-pinned). Boxed: the config is cold construction
        /// state, and the hot `Topology` enum should stay small.
        fabric: Box<FabricConfig>,
    },
}

impl Topology {
    /// PR 3's topology: a 1-bridge star over `segments` with default
    /// engine knobs, striped page homes, flooded requests, and sticky
    /// interest.
    pub fn segmented(segments: usize) -> Topology {
        Topology::Segmented {
            fabric: Box::new(FabricConfig::star(segments)),
        }
    }

    /// A segmented topology over an explicit fabric.
    pub fn fabric(fabric: FabricConfig) -> Topology {
        Topology::Segmented {
            fabric: Box::new(fabric),
        }
    }
}

/// Static description of a simulated deployment.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of workstations on the network.
    pub hosts: usize,
    /// Host-side cost model.
    pub calib: Calib,
    /// Network model parameters (applied to every segment; loss seeds
    /// are derived per segment).
    pub ether: EtherConfig,
    /// Mether page configuration.
    pub mether: MetherConfig,
    /// Segment wiring: one flat broadcast domain, or bridged segments.
    pub topology: Topology,
}

impl SimConfig {
    /// The paper's testbed: `n` Sun-3/50s on a 10 Mbit/s Ethernet.
    pub fn paper(n: usize) -> Self {
        SimConfig {
            hosts: n,
            calib: Calib::sun3_sunos4(),
            ether: EtherConfig::ten_megabit(),
            mether: MetherConfig::new(),
            topology: Topology::Flat,
        }
    }

    /// The paper's testbed scaled out: `segments` bridged 10 Mbit/s
    /// segments of `hosts_per_segment` Sun-3/50s each, default bridge,
    /// striped page homes.
    pub fn paper_segmented(segments: usize, hosts_per_segment: usize) -> Self {
        SimConfig {
            topology: Topology::segmented(segments),
            ..Self::paper(segments * hosts_per_segment)
        }
    }
}

/// Caps on a run, so degenerate protocols (Figure 6) terminate.
#[derive(Debug, Clone, Copy)]
pub struct RunLimits {
    /// Stop after this much virtual time.
    pub max_sim_time: SimDuration,
    /// Stop after this many events (backstop against livelock).
    pub max_events: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            max_sim_time: SimDuration::from_secs(600),
            max_events: 200_000_000,
        }
    }
}

/// Result summary of [`Simulation::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// True if every application process exited before the limits.
    pub finished: bool,
    /// Virtual time when the run stopped.
    pub wall: SimDuration,
    /// Events processed.
    pub events: u64,
}

/// The hosts one popped transit delivers to.
///
/// A broadcast Ethernet has no per-recipient state: every NIC on the
/// segment hears every frame. `Recipients` keeps that O(1)-sized on the
/// event heap — [`Recipients::AllExcept`] (flat networks: everyone
/// snoops, the sender ignores its own frame) costs two words however
/// many hosts share the segment, and [`Recipients::Subset`] (segmented
/// networks: exactly one segment's members) is a variable-length
/// [`HostMask`] iterated in O(set bits) — clone-cheap inline up to 128
/// hosts, a shared-buffer refcount bump beyond. Fan-out order is
/// ascending host index for every variant, which is what lets the
/// delivery-mode and topology regression tests pin them to identical
/// outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recipients {
    /// Every host on the (flat) network except the sender.
    AllExcept(usize),
    /// Exactly one host. Used by [`DeliveryMode::PerHostCompat`] (one
    /// event per recipient, the pre-overhaul schedule) and available for
    /// future unicast transports.
    One(usize),
    /// Exactly the masked hosts — one bridged segment's snoopers, the
    /// sender (if a member) already excluded by the scheduler.
    Subset(HostMask),
}

impl Recipients {
    /// The recipient set as a bitmask, for an `n`-host deployment.
    ///
    /// This is definitional for delivery: all three variants fan out in
    /// the mask's ascending order, so `Subset(AllExcept's mask)` and
    /// `AllExcept` are interchangeable (property-tested).
    ///
    pub fn to_mask(&self, n: usize) -> HostMask {
        match self {
            Recipients::AllExcept(sender) => HostMask::all_except(n, *sender),
            Recipients::One(h) => HostMask::single(*h).intersection(&HostMask::all_below(n)),
            Recipients::Subset(m) => m.intersection(&HostMask::all_below(n)),
        }
    }
}

/// How packet transits become host deliveries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeliveryMode {
    /// One `Deliver` event per transit; the recipient set fans out at pop
    /// time. Heap growth per broadcast is O(1).
    #[default]
    PerTransit,
    /// One `Deliver` event per recipient, reproducing the pre-overhaul
    /// O(hosts)-events-per-broadcast schedule. Kept (and exercised by
    /// the seed-regression tests) to pin the refactor to byte-identical
    /// outcomes; delivery order is provably the same, so both modes must
    /// produce identical page states and metrics for any seed.
    PerHostCompat,
}

#[derive(Debug)]
enum EvKind {
    BurstEnd {
        host: usize,
    },
    /// One transit finishing delivery: the packet (and its page payload)
    /// is materialised once, shared by reference with every recipient,
    /// and fanned out when the event pops — the heap never carries
    /// per-recipient arrival events in [`DeliveryMode::PerTransit`].
    Deliver {
        to: Recipients,
        pkt: Arc<Packet>,
    },
    /// A forwarded frame copy exits bridge device `from` toward segment
    /// `dst`: transmit it on `dst`'s own medium (where it queues like a
    /// local frame), schedule the resulting segment-masked delivery, and
    /// offer the delivered copy to the *other* devices on `dst` so it
    /// hops onward along the tree.
    BridgeForward {
        from: usize,
        dst: usize,
        pkt: Arc<Packet>,
    },
    Timer {
        host: usize,
        proc: usize,
    },
    /// A fault-retry timer: if the process is still blocked on the same
    /// fault (matching epoch), abandon the wait and re-issue the access
    /// — retransmitting the request a failed fabric swallowed.
    Retry {
        host: usize,
        proc: usize,
        epoch: u64,
    },
    /// One hello-cadence tick of a live-election bridge device: timeout
    /// checks plus this cadence's hellos. Self-rescheduling while the
    /// device lives; `epoch` guards against duplicate chains — a
    /// BridgeDown/BridgeUp cycle cancels the old chain (by bumping the
    /// device's tick epoch) and seeds exactly one new one, so a tick
    /// carrying a stale epoch is dropped unprocessed.
    BridgeTick {
        device: usize,
        epoch: u64,
    },
    /// A bridge control frame (hello/TC) finished transmitting on `seg`:
    /// the *other* live devices attached to the segment ingest it.
    /// Hosts never see these — their NICs filter the BPDU address.
    ControlDeliver {
        seg: usize,
        from: usize,
        pkt: Arc<Packet>,
    },
    /// An injected fabric failure or recovery fires.
    Fabric(FabricEvent),
    /// One cadence tick of the periodic holder re-broadcast
    /// ([`Calib::holder_rebroadcast`]): the host queues a
    /// current-generation retransmission for every page it still holds
    /// consistent and has published. Self-rescheduling while the run
    /// lives; seeded once per host when the knob is on.
    Rebroadcast {
        host: usize,
    },
    /// The next open-loop arrival on `host` is due: inject the buffered
    /// access ([`HostSim::open_arrival`]) and schedule the following
    /// one. Self-rescheduling while the host's stream has arrivals
    /// left; seeded once per attached host at the first `run`.
    OpenArrival {
        host: usize,
    },
}

struct Ev {
    at: SimTime,
    /// Cross-queue tie class at one instant: control-plane events are
    /// tier 0, segment-local events tier `1 + segment`. On a flat
    /// topology every event is tier 1, so the order stays pure
    /// `(time, sequence)`. On a segmented one this is the rule a
    /// lane-parallel execution realizes *by construction* (the control
    /// plane runs between windows; pickups replay in segment order), so
    /// the serial oracle adopts it too — exact-instant cross-lane ties
    /// then resolve identically under both schedules.
    tier: u16,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.tier == other.tier && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then(other.tier.cmp(&self.tier))
            .then(other.seq.cmp(&self.seq))
    }
}

/// Event-heap traffic counters (diagnostics; the broadcast-heap bench
/// and the per-transit acceptance tests read these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventStats {
    /// Total events pushed onto the heap.
    pub heap_pushes: u64,
    /// Events pushed specifically to deliver packet transits (the
    /// component the per-transit overhaul shrinks by ~hosts×).
    pub delivery_pushes: u64,
    /// Events pushed to carry frames across the bridge (one per frame
    /// copy per destination segment; zero on flat topologies).
    pub bridge_pushes: u64,
    /// Events pushed for the fabric control plane (hello ticks and
    /// control-frame deliveries; zero under static election).
    pub control_pushes: u64,
    /// Hello ticks scheduled on the fixed-cadence timer ring instead of
    /// the heap (a subset of `control_pushes`): the hello cadence is one
    /// global interval, so rescheduled ticks are always the latest
    /// pending deadline and a sorted deque replaces O(log n) heap
    /// traffic with O(1) appends.
    pub timer_ring_pushes: u64,
    /// Worker-pool handoffs performed by the lane-parallel coordinator
    /// (one per batched window dispatch, not one per lane; zero on
    /// serial runs). The batching win `lane_event_counts` can't see.
    pub task_handoffs: u64,
    /// Packet transits that reached at least one recipient.
    pub transits: u64,
    /// Peak heap depth observed.
    pub max_heap_depth: usize,
}

/// A complete simulated deployment, ready to run.
pub struct Simulation {
    hosts: Vec<HostSim>,
    /// One delivery lane per segment: independent carrier state, loss
    /// RNG, and traffic counters. Flat deployments have exactly one.
    segments: Vec<EtherSim>,
    /// Host→segment blocks; `None` on [`Topology::Flat`].
    layout: Option<SegmentLayout>,
    /// The routed bridge fabric; `None` on flat networks.
    fabric: Option<Fabric>,
    events: BinaryHeap<Ev>,
    /// The fixed-cadence hello timer ring: pending `BridgeTick`s as
    /// `(due, seq, device, epoch)`, kept sorted by construction — every
    /// entry is pushed with `due = now + hello_interval` for the one
    /// global interval, so a new deadline is never earlier than a
    /// pending one and `push_back` suffices. Entries draw `seq` from
    /// the same counter as heap pushes at the same code points, so the
    /// merged pop order (by `(at, tier, seq)`; ticks are tier 0) is
    /// bit-identical to the all-heap schedule while the recurring
    /// O(devices) tick load stops paying heap sift costs.
    hello_ring: VecDeque<(SimTime, u64, usize, u64)>,
    seq: u64,
    now: SimTime,
    delivery: DeliveryMode,
    ev_stats: EventStats,
    /// Events each lane executed during the last parallel run (empty
    /// after a serial run) — the lane-balance diagnostic.
    lane_events: Vec<u64>,
    /// Whether the per-device hello ticks have been seeded into the
    /// heap (once, at the first `run`; live election only).
    ticks_started: bool,
    /// Per-device tick-chain epochs: a `BridgeDown` bumps the device's
    /// epoch (orphaning its pending tick), a `BridgeUp` bumps it again
    /// and seeds one fresh chain — so a device never ticks twice per
    /// hello interval however failure and revival interleave with the
    /// pending events.
    tick_epochs: Vec<u64>,
    /// Serial oracle schedule or conservative lane-parallel execution
    /// (see [`ParallelMode`]).
    parallel: ParallelMode,
    /// The cross-layer invariant checker (see [`observe`]): sweeps the
    /// deployment for contradictions after sampled event pops, under
    /// `debug_assertions` or `METHER_OBSERVE=1`.
    observer: observe::Observer,
}

impl Simulation {
    /// Builds a quiet deployment from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.hosts` is zero, or if a [`Topology::Segmented`]
    /// layout is invalid (zero segments, or more segments than hosts).
    pub fn new(cfg: SimConfig) -> Self {
        assert!(cfg.hosts > 0, "a simulation needs at least one host");
        let hosts: Vec<HostSim> = (0..cfg.hosts)
            .map(|i| HostSim::new(i, cfg.calib.clone(), cfg.mether.clone()))
            .collect();
        let (segments, layout, fabric) = match cfg.topology {
            Topology::Flat => (vec![EtherSim::new(cfg.ether)], None, None),
            Topology::Segmented { fabric } => {
                let segments = fabric.topology.segments();
                let layout = match SegmentLayout::new(cfg.hosts, segments) {
                    Ok(l) => l,
                    Err(e) => panic!("invalid segmented topology: {e}"),
                };
                let ethers = (0..segments)
                    .map(|s| EtherSim::new(cfg.ether.clone().for_segment(s)))
                    .collect();
                (ethers, Some(layout), Some(Fabric::new(layout, *fabric)))
            }
        };
        let tick_epochs = vec![0; fabric.as_ref().map_or(0, Fabric::device_count)];
        Simulation {
            hosts,
            segments,
            layout,
            fabric,
            events: BinaryHeap::new(),
            hello_ring: VecDeque::new(),
            seq: 0,
            now: SimTime::ZERO,
            delivery: DeliveryMode::default(),
            ev_stats: EventStats::default(),
            lane_events: Vec::new(),
            ticks_started: false,
            tick_epochs,
            parallel: ParallelMode::from_env(),
            observer: observe::Observer::from_env(cfg.hosts),
        }
    }

    /// Runs one full invariant sweep over the deployment right now,
    /// regardless of the observer's gating — cross-checking page-table
    /// holder agreement, bridge belief sanity, interest/age-stamp
    /// coherence, and elected-tree consistency (the catalogue in
    /// [`observe`]). The soak harness calls this in release builds; in
    /// debug builds the same sweep also runs automatically on sampled
    /// event pops during [`Simulation::run`].
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic on the first contradiction found.
    pub fn check_invariants(&mut self) {
        let mut hosts: Vec<&mut HostSim> = self.hosts.iter_mut().collect();
        self.observer
            .sweep_full(&mut hosts, self.fabric.as_mut(), self.now);
    }

    /// Runs one *incremental* invariant sweep right now, regardless of
    /// the observer's gating: drains the dirty sets (entities whose
    /// observable state mutated since the last sweep) and checks only
    /// those, against the persistent holder map and watermarks. This is
    /// what sampled sweeps during [`Simulation::run`] do; it is public
    /// so benchmarks and differential tests can drive the incremental
    /// path head-to-head against [`Simulation::check_invariants`] (the
    /// full oracle).
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic on the first contradiction found.
    pub fn sweep_dirty(&mut self) {
        let mut hosts: Vec<&mut HostSim> = self.hosts.iter_mut().collect();
        self.observer
            .sweep_incremental_forced(&mut hosts, self.fabric.as_mut(), self.now);
    }

    /// Observer coverage counters so far (sweeps run, entities checked,
    /// dirty-set high-water mark, effective stride); all zero when the
    /// observer never ran.
    pub fn observer_stats(&self) -> ObserverStats {
        self.observer.stats()
    }

    /// Mutable fabric access for corruption-injection tests (`None` on
    /// flat topologies): lets a differential test plant a bad holder
    /// belief or learned-interest entry through the devices' ordinary
    /// mutation paths and assert both observer modes flag it.
    #[doc(hidden)]
    pub fn fabric_mut_for_test(&mut self) -> Option<&mut Fabric> {
        self.fabric.as_mut()
    }

    /// Selects serial or lane-parallel execution (see [`ParallelMode`]).
    /// Call before [`Simulation::run`]. Deployments the parallel engine
    /// cannot partition (flat, single-segment, compat delivery, or a
    /// zero forward-delay fabric) silently run the serial schedule.
    pub fn set_parallel_mode(&mut self, mode: ParallelMode) {
        self.parallel = mode;
    }

    /// Schedules a fabric failure/recovery event `at` sim time after the
    /// start of the run ([`mether_net::FabricEvent`]): bridge devices
    /// dying and restarting, links failing. Call before
    /// [`Simulation::run`].
    ///
    /// # Panics
    ///
    /// Panics on a flat topology (there is no fabric to fail).
    pub fn schedule_fabric_event(&mut self, at: SimDuration, ev: FabricEvent) {
        assert!(
            self.fabric.is_some(),
            "fabric events need a segmented topology"
        );
        self.push(SimTime::ZERO + at, EvKind::Fabric(ev));
    }

    /// Selects how transits are scheduled (see [`DeliveryMode`]). The
    /// default, [`DeliveryMode::PerTransit`], is what production runs
    /// use; [`DeliveryMode::PerHostCompat`] exists for the seed-pinned
    /// regression tests. Call before [`Simulation::run`].
    pub fn set_delivery_mode(&mut self, mode: DeliveryMode) {
        self.delivery = mode;
    }

    /// Event-heap traffic counters so far.
    pub fn event_stats(&self) -> EventStats {
        self.ev_stats
    }

    /// Events each per-segment lane executed during the last
    /// [`ParallelMode::Workers`] run, indexed by segment; empty after a
    /// serial run. `sum / max` over this slice is the parallelism the
    /// deployment exposes to the worker pool (the critical-path bound a
    /// multi-core host can approach), independent of how many cores the
    /// measuring machine happens to have.
    pub fn lane_event_counts(&self) -> &[u64] {
        &self.lane_events
    }

    /// Adds an application process to `host`; returns its process index.
    pub fn add_process(&mut self, host: usize, workload: Box<dyn Workload>) -> usize {
        self.hosts[host].add_process(workload)
    }

    /// Attaches an open-loop arrival stream to `host`
    /// ([`HostSim::attach_open_loop`]): its accesses are injected as sim
    /// events at their arrival times, independent of what the host's
    /// processes are doing. Call before [`Simulation::run`].
    pub fn attach_open_loop(&mut self, host: usize, stream: Box<dyn ArrivalStream>) {
        self.hosts[host].attach_open_loop(stream);
    }

    /// The deployment-wide open-loop fault-latency histogram: every
    /// host's lane-local histogram merged (order-independent, so serial
    /// and worker runs agree exactly).
    pub fn open_loop_hist(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for h in &self.hosts {
            if let Some(hist) = h.open_hist() {
                merged.merge(hist);
            }
        }
        merged
    }

    /// Deterministic digest of the open-loop run: per-host issue/hit/
    /// fault counts folded with the merged latency histogram's digest.
    /// Pinned by the determinism tests (same seed ≡ same digest, serial
    /// ≡ `METHER_WORKERS=2`).
    pub fn open_loop_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (i, host) in self.hosts.iter().enumerate() {
            let (issued, hits, faults) = host.open_counts();
            if issued > 0 || host.open_hist().is_some() {
                mix(i as u64);
                mix(issued);
                mix(hits);
                mix(faults);
            }
        }
        mix(self.open_loop_hist().digest());
        h
    }

    /// Per-segment server-queue high-water marks: for each segment, the
    /// deepest server work queue any member host saw. On a flat topology
    /// this is one entry. The open-loop SLO report reads this to spot
    /// hot home segments.
    pub fn server_queue_high_water(&self) -> Vec<u64> {
        match self.layout {
            None => vec![self
                .hosts
                .iter()
                .map(|h| h.max_server_queue as u64)
                .max()
                .unwrap_or(0)],
            Some(layout) => (0..layout.segments())
                .map(|s| {
                    layout
                        .members(s)
                        .into_iter()
                        .map(|h| self.hosts[h].max_server_queue as u64)
                        .max()
                        .unwrap_or(0)
                })
                .collect(),
        }
    }

    /// Seeds `page` as created (consistent) on `host`.
    pub fn create_owned(&mut self, host: usize, page: PageId) {
        self.hosts[host].table.create_owned(page);
    }

    /// Immutable access to a host (metrics, page table inspection).
    pub fn host(&self, i: usize) -> &HostSim {
        &self.hosts[i]
    }

    /// Number of hosts in the deployment.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Whole-network traffic so far: the per-segment counters summed
    /// (the view existing flat-network callers expect).
    pub fn net_stats(&self) -> mether_net::NetStats {
        mether_net::NetStats::sum(self.segments.iter().map(EtherSim::stats))
    }

    /// Number of Ethernet segments (1 on a flat topology).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Traffic counters of segment `seg` alone — losses, decode errors
    /// and the rest stay attributable to the wire they happened on.
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of range.
    pub fn segment_stats(&self, seg: usize) -> &mether_net::NetStats {
        self.segments[seg].stats()
    }

    /// The segment host `host` sits on (0 for every host of a flat
    /// deployment).
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range on a segmented topology.
    pub fn segment_of(&self, host: usize) -> usize {
        self.layout.map_or(0, |l| l.segment_of(host))
    }

    /// Fabric-wide bridge traffic counters (per-device counters summed);
    /// `None` on a flat topology.
    pub fn bridge_stats(&self) -> Option<BridgeStats> {
        self.fabric.as_ref().map(Fabric::stats)
    }

    /// Per-device bridge traffic counters, indexed by device; empty on a
    /// flat topology.
    pub fn bridge_device_stats(&self) -> Vec<BridgeStats> {
        self.fabric
            .as_ref()
            .map(Fabric::device_stats)
            .unwrap_or_default()
    }

    /// Active-tree changes across all bridge devices so far (0 on flat
    /// topologies, under static election, or on an undisturbed fabric).
    pub fn fabric_reconvergences(&self) -> u64 {
        self.fabric.as_ref().map_or(0, Fabric::reconvergences)
    }

    /// The measured reconvergence stall: sim time from the most recent
    /// injected `BridgeDown` to the first `PageData` forwarded by a
    /// re-elected device. `None` until measured (or on flat topologies).
    pub fn fabric_stall(&self) -> Option<SimDuration> {
        self.fabric.as_ref().and_then(Fabric::stall)
    }

    /// Statically subscribes segment `seg` to `page`'s transits at every
    /// bridge device (see [`mether_net::BridgePolicy::subscribe`]) —
    /// required when a segment's only consumers of the page are
    /// data-driven readers, which never transmit anything the fabric
    /// could learn from.
    ///
    /// # Panics
    ///
    /// Panics on a flat topology or an out-of-range segment.
    pub fn subscribe_segment(&mut self, page: PageId, seg: usize) {
        self.fabric
            .as_mut()
            .expect("subscribe_segment needs a segmented topology")
            .subscribe(page, seg);
    }

    /// The event's tie class at one instant (see [`Ev::tier`]): 0 for
    /// control-plane kinds, `1 + segment` for segment-local kinds, and
    /// a single tier 1 on a flat topology (pure sequence order there).
    fn tier_of(&self, kind: &EvKind) -> u16 {
        let Some(layout) = self.layout else {
            return match kind {
                // Flat deployments have no fabric, but injected fabric
                // events still sort ahead of host events for symmetry.
                EvKind::BridgeTick { .. } | EvKind::ControlDeliver { .. } | EvKind::Fabric(_) => 0,
                _ => 1,
            };
        };
        let seg = match kind {
            EvKind::BridgeTick { .. } | EvKind::ControlDeliver { .. } | EvKind::Fabric(_) => {
                return 0;
            }
            EvKind::BurstEnd { host }
            | EvKind::Timer { host, .. }
            | EvKind::Retry { host, .. }
            | EvKind::Rebroadcast { host }
            | EvKind::OpenArrival { host } => layout.segment_of(*host),
            EvKind::BridgeForward { dst, .. } => *dst,
            EvKind::Deliver { to, .. } => match to {
                Recipients::One(h) => layout.segment_of(*h),
                Recipients::Subset(mask) => {
                    mask.into_iter().next().map_or(0, |h| layout.segment_of(h))
                }
                // The compat schedule's flat broadcast spans segments;
                // it only exists on per-recipient mode, which the
                // parallel engine refuses anyway.
                Recipients::AllExcept(_) => 0,
            },
        };
        1 + seg as u16
    }

    fn push(&mut self, at: SimTime, kind: EvKind) {
        let tier = self.tier_of(&kind);
        let seq = self.seq;
        self.seq += 1;
        self.ev_stats.heap_pushes += 1;
        if matches!(kind, EvKind::Deliver { .. }) {
            self.ev_stats.delivery_pushes += 1;
        }
        self.events.push(Ev {
            at,
            tier,
            seq,
            kind,
        });
        self.ev_stats.max_heap_depth = self.ev_stats.max_heap_depth.max(self.events.len());
    }

    /// Schedules one hello tick on the timer ring (see
    /// [`Simulation::hello_ring`]): same sequence counter and control
    /// accounting as a heap push, no heap traffic.
    fn ring_push(&mut self, at: SimTime, device: usize, epoch: u64) {
        let seq = self.seq;
        self.seq += 1;
        self.ev_stats.control_pushes += 1;
        self.ev_stats.timer_ring_pushes += 1;
        debug_assert!(self.hello_ring.back().is_none_or(|&(due, ..)| due <= at));
        self.hello_ring.push_back((at, seq, device, epoch));
    }

    /// Dispatches `host` if its CPU is idle, scheduling the burst end,
    /// any sleep timers it requested, and any fault-retry timers armed
    /// while blocking.
    fn kick(&mut self, host: usize) {
        if let Some(end) = self.hosts[host].dispatch(self.now) {
            self.push(end, EvKind::BurstEnd { host });
        }
        for (proc, wake_at) in self.hosts[host].take_sleeps() {
            self.push(wake_at, EvKind::Timer { host, proc });
        }
        for (proc, fire_at, epoch) in self.hosts[host].take_retries() {
            self.push(fire_at, EvKind::Retry { host, proc, epoch });
        }
    }

    /// Transmits one bridge control frame on its segment's medium and
    /// schedules its delivery to the other devices there. Hosts never
    /// receive control frames (their NICs filter the bridge multicast
    /// address), but the frame occupies the wire like any other and is
    /// subject to the segment's loss process.
    fn transmit_control(&mut self, out: ControlOut) {
        let pkt = Arc::new(out.pkt);
        let tx = self.segments[out.seg].transmit(self.now, &pkt);
        if let Some(at) = tx.delivered_at {
            self.ev_stats.control_pushes += 1;
            self.push(
                at,
                EvKind::ControlDeliver {
                    seg: out.seg,
                    from: out.device,
                    pkt,
                },
            );
        }
    }

    /// Schedules the delivery of one completed transit to `recipients`
    /// (a segment's members, or the whole flat network) at `at`,
    /// honouring the delivery mode: one fanned-out event per transit, or
    /// the compat one-event-per-recipient schedule in the same ascending
    /// host order.
    fn schedule_delivery(&mut self, at: SimTime, recipients: Recipients, pkt: &Arc<Packet>) {
        match self.delivery {
            DeliveryMode::PerTransit => {
                // One heap event per transit, however many hosts snoop
                // it: the network does the fan-out (at pop time), not
                // the event queue.
                self.push(
                    at,
                    EvKind::Deliver {
                        to: recipients,
                        pkt: Arc::clone(pkt),
                    },
                );
            }
            DeliveryMode::PerHostCompat => {
                // Pre-overhaul schedule: one arrival event per recipient
                // with consecutive sequence numbers. They pop
                // contiguously in host order — exactly the order the
                // per-transit fan-out walks.
                match recipients {
                    Recipients::AllExcept(from) => {
                        for h in 0..self.hosts.len() {
                            if h != from {
                                self.push(
                                    at,
                                    EvKind::Deliver {
                                        to: Recipients::One(h),
                                        pkt: Arc::clone(pkt),
                                    },
                                );
                            }
                        }
                    }
                    Recipients::Subset(mask) => {
                        for h in mask {
                            self.push(
                                at,
                                EvKind::Deliver {
                                    to: Recipients::One(h),
                                    pkt: Arc::clone(pkt),
                                },
                            );
                        }
                    }
                    Recipients::One(_) => self.push(
                        at,
                        EvKind::Deliver {
                            to: recipients,
                            pkt: Arc::clone(pkt),
                        },
                    ),
                }
            }
        }
    }

    fn apply(&mut self, actions: Vec<HostAction>) {
        for a in actions {
            match a {
                HostAction::Transmit(pkt) => {
                    let from = pkt.from().0 as usize;
                    let seg = self.layout.map_or(0, |l| l.segment_of(from));
                    let tx = self.segments[seg].transmit(self.now, &pkt);
                    if let Some(at) = tx.delivered_at {
                        if self.hosts.len() <= 1 {
                            continue; // nobody anywhere to snoop
                        }
                        self.ev_stats.transits += 1;
                        let shared = Arc::new(pkt);
                        let recipients = match self.layout {
                            // Flat: the whole network snoops.
                            None => Some(Recipients::AllExcept(from)),
                            // Segmented: exactly this segment's members
                            // (the sender alone on its segment has no
                            // local snoopers, but the bridge below may
                            // still carry the frame out).
                            Some(l) => {
                                let mask = l.members(seg).without(from);
                                (!mask.is_empty()).then_some(Recipients::Subset(mask))
                            }
                        };
                        if let Some(r) = recipients {
                            self.schedule_delivery(at, r, &shared);
                        }
                        // Every bridge device on this segment heard the
                        // frame too; schedule each forwarded copy's exit
                        // from its device.
                        if let Some(fabric) = self.fabric.as_mut() {
                            for fw in fabric.pickup(&shared, seg, at) {
                                self.ev_stats.bridge_pushes += 1;
                                self.push(
                                    fw.exit,
                                    EvKind::BridgeForward {
                                        from: fw.device,
                                        dst: fw.dst,
                                        pkt: Arc::clone(&shared),
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Runs until every process is done or a limit trips.
    ///
    /// Under [`ParallelMode::Workers`] on an eligible segmented
    /// deployment, the per-segment event lanes advance concurrently on
    /// a worker pool (see [`ParallelMode`] for the synchronization
    /// protocol and its divergence caveats); otherwise this is the
    /// serial oracle schedule.
    pub fn run(&mut self, limits: RunLimits) -> RunOutcome {
        match self.parallel {
            ParallelMode::Workers(n) if n >= 2 && self.parallel_eligible() => {
                self.run_parallel(limits, n)
            }
            _ => self.run_serial(limits),
        }
    }

    /// The serial schedule: one global heap, events strictly in
    /// `(time, tier, insertion sequence)` order — the determinism
    /// oracle the parallel engine is validated against.
    fn run_serial(&mut self, limits: RunLimits) -> RunOutcome {
        let deadline = SimTime::ZERO + limits.max_sim_time;
        let mut processed: u64 = 0;
        // Seed the per-device hello ticks once, at the first run: one
        // self-rescheduling tick entry per live-election bridge device,
        // on the timer ring rather than the heap.
        if !self.ticks_started {
            self.ticks_started = true;
            if let Some(fabric) = self.fabric.as_ref() {
                if let Some(interval) = fabric.election().hello_interval() {
                    for device in 0..fabric.device_count() {
                        let epoch = self.tick_epochs[device];
                        self.ring_push(self.now + interval, device, epoch);
                    }
                }
            }
            // Seed the periodic holder re-broadcast chains (one
            // self-rescheduling event per host) when the knob is on.
            for host in 0..self.hosts.len() {
                if let Some(interval) = self.hosts[host].holder_rebroadcast_interval() {
                    self.push(self.now + interval, EvKind::Rebroadcast { host });
                }
            }
            // Seed the open-loop arrival chains (one self-rescheduling
            // event per host with an attached stream).
            for host in 0..self.hosts.len() {
                if let Some(at) = self.hosts[host].open_next_at() {
                    self.push(at, EvKind::OpenArrival { host });
                }
            }
        }
        for h in 0..self.hosts.len() {
            self.kick(h);
        }
        let observing = self.observer.enabled();
        loop {
            // The next event is the earlier of the heap top and the
            // hello-ring front under the shared `(time, tier, seq)` key
            // (ring entries are BridgeTicks: tier 0) — the schedule is
            // bit-identical to keeping the ticks on the heap.
            let ring_wins = match (self.events.peek(), self.hello_ring.front()) {
                (None, None) => break,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (Some(top), Some(&(due, seq, _, _))) => {
                    (due, 0u16, seq) < (top.at, top.tier, top.seq)
                }
            };
            let ev = if ring_wins {
                let (at, seq, device, epoch) = self.hello_ring.pop_front().expect("peeked");
                Ev {
                    at,
                    tier: 0,
                    seq,
                    kind: EvKind::BridgeTick { device, epoch },
                }
            } else {
                self.events.pop().expect("peeked")
            };
            if ev.at > deadline || processed >= limits.max_events {
                self.now = self.now.max(ev.at.max(deadline));
                if observing {
                    self.check_invariants();
                }
                return RunOutcome {
                    finished: false,
                    wall: self.now - SimTime::ZERO,
                    events: processed,
                };
            }
            // Invariant (e), serial side: the heap's `(time, tier, seq)`
            // order means popped times never regress.
            if observing {
                assert!(
                    ev.at >= self.now,
                    "event popped at {} after time already advanced to {}",
                    ev.at,
                    self.now
                );
            }
            processed += 1;
            self.now = ev.at;
            match ev.kind {
                EvKind::BurstEnd { host } => {
                    let actions = self.hosts[host].finish_burst(self.now);
                    self.apply(actions);
                    self.kick(host);
                }
                EvKind::Deliver { to, pkt } => match to {
                    Recipients::One(h) => {
                        self.hosts[h].deliver_packet(self.now, pkt);
                        self.kick(h);
                    }
                    Recipients::AllExcept(from) => {
                        // Fan out at pop time, in host order — the same
                        // order the per-host schedule pops its
                        // consecutive-sequence arrival events in. The
                        // early exit mirrors the compat schedule too: it
                        // stops consuming events the moment every
                        // process is done, abandoning undelivered
                        // arrivals just as run() would abandon them on
                        // the heap.
                        for h in 0..self.hosts.len() {
                            if h == from {
                                continue;
                            }
                            self.hosts[h].deliver_packet(self.now, Arc::clone(&pkt));
                            self.kick(h);
                            if self.hosts.iter().all(HostSim::all_done) {
                                break;
                            }
                        }
                    }
                    Recipients::Subset(mask) => {
                        // The segment-masked fan-out: ascending host
                        // order and the same early exit as the flat
                        // broadcast above.
                        for h in mask {
                            self.hosts[h].deliver_packet(self.now, Arc::clone(&pkt));
                            self.kick(h);
                            if self.hosts.iter().all(HostSim::all_done) {
                                break;
                            }
                        }
                    }
                },
                EvKind::BridgeForward { from, dst, pkt } => {
                    // The forwarded copy exits its device now: clock it
                    // out on the destination segment's own medium (it
                    // queues there behind local traffic) and fan it out
                    // to that segment's members. The original sender is
                    // not on `dst`, so nobody is excluded. The *other*
                    // devices on `dst` pick the copy up and carry it
                    // further along the tree; the forwarding device is
                    // excluded, and the topology is a tree, so the walk
                    // cannot loop.
                    let tx = self.segments[dst].transmit(self.now, &pkt);
                    if let Some(at) = tx.delivered_at {
                        let mask = self
                            .layout
                            .expect("bridge events only exist on segmented topologies")
                            .members(dst);
                        self.schedule_delivery(at, Recipients::Subset(mask), &pkt);
                        if let Some(fabric) = self.fabric.as_mut() {
                            for fw in fabric.pickup_forwarded(&pkt, dst, at, from) {
                                self.ev_stats.bridge_pushes += 1;
                                self.push(
                                    fw.exit,
                                    EvKind::BridgeForward {
                                        from: fw.device,
                                        dst: fw.dst,
                                        pkt: Arc::clone(&pkt),
                                    },
                                );
                            }
                        }
                    }
                }
                EvKind::Timer { host, proc } => {
                    self.hosts[host].timer_fired(proc);
                    self.kick(host);
                }
                EvKind::Retry { host, proc, epoch } => {
                    if (proc as WaiterId) >= crate::host::OPEN_WAITER_BASE {
                        if let Some(actions) =
                            self.hosts[host].open_retry_fired(self.now, proc as WaiterId)
                        {
                            self.apply(actions);
                            self.kick(host);
                        }
                    } else if self.hosts[host].retry_fired(proc, epoch) {
                        self.kick(host);
                    }
                }
                EvKind::Rebroadcast { host } => {
                    if self.hosts[host].queue_holder_rebroadcasts(self.now) > 0 {
                        self.kick(host);
                    }
                    if let Some(interval) = self.hosts[host].holder_rebroadcast_interval() {
                        self.push(self.now + interval, EvKind::Rebroadcast { host });
                    }
                }
                EvKind::OpenArrival { host } => {
                    let actions = self.hosts[host].open_arrival(self.now);
                    self.apply(actions);
                    self.kick(host);
                    if let Some(at) = self.hosts[host].open_next_at() {
                        self.push(at, EvKind::OpenArrival { host });
                    }
                }
                EvKind::BridgeTick { device, epoch } => {
                    if self.tick_epochs[device] != epoch {
                        continue; // an orphaned chain (the device died)
                    }
                    let Some(fabric) = self.fabric.as_mut() else {
                        continue;
                    };
                    if fabric.is_dead(device) {
                        // A dead device stops ticking; BridgeUp reseeds.
                        continue;
                    }
                    let outs = fabric.tick(device, self.now);
                    for out in outs {
                        self.transmit_control(out);
                    }
                    if let Some(interval) = self
                        .fabric
                        .as_ref()
                        .and_then(|f| f.election().hello_interval())
                    {
                        self.ring_push(self.now + interval, device, epoch);
                    }
                }
                EvKind::ControlDeliver { seg, from, pkt } => {
                    let outs = self
                        .fabric
                        .as_mut()
                        .map(|f| f.hear_control(&pkt, seg, self.now, from))
                        .unwrap_or_default();
                    // Triggered hellos (belief changes) go straight back
                    // onto the wire — the TC-style fast propagation.
                    for out in outs {
                        self.transmit_control(out);
                    }
                }
                EvKind::Fabric(ev) => {
                    if let Some(fabric) = self.fabric.as_mut() {
                        let was_dead = match ev {
                            FabricEvent::BridgeDown(d) | FabricEvent::BridgeUp(d) => {
                                fabric.is_dead(d)
                            }
                            FabricEvent::LinkDown { .. } | FabricEvent::LinkUp { .. } => false,
                        };
                        fabric.apply_event(ev, self.now);
                        match ev {
                            // A death orphans the device's pending tick
                            // chain (belt and braces with the dead
                            // check at tick time).
                            FabricEvent::BridgeDown(d) if !was_dead => {
                                self.tick_epochs[d] += 1;
                            }
                            // A genuine revival resumes the hello
                            // cadence with exactly one fresh chain;
                            // a BridgeUp for a device that was never
                            // down stays a no-op.
                            FabricEvent::BridgeUp(device) if was_dead => {
                                self.tick_epochs[device] += 1;
                                let epoch = self.tick_epochs[device];
                                if let Some(interval) = self
                                    .fabric
                                    .as_ref()
                                    .and_then(|f| f.election().hello_interval())
                                {
                                    self.ring_push(self.now + interval, device, epoch);
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
            if self.observer.on_event() {
                let mut hosts: Vec<&mut HostSim> = self.hosts.iter_mut().collect();
                self.observer
                    .sweep_sampled(&mut hosts, self.fabric.as_mut(), self.now);
            }
            if self.hosts.iter().all(HostSim::all_done) {
                if observing {
                    self.check_invariants();
                }
                return RunOutcome {
                    finished: true,
                    wall: self.now - SimTime::ZERO,
                    events: processed,
                };
            }
        }
        if observing {
            self.check_invariants();
        }
        RunOutcome {
            finished: self.hosts.iter().all(HostSim::all_done),
            wall: self.now - SimTime::ZERO,
            events: processed,
        }
    }

    /// Aggregates a finished (or capped) run into the paper's table
    /// format. `space_pages` is the protocol's Mether footprint (the
    /// paper's "Space" row).
    pub fn metrics(&self, label: &str, finished: bool, space_pages: u32) -> ProtocolMetrics {
        let wall = self.now - SimTime::ZERO;
        let nhosts = self.hosts.len().max(1) as u64;
        let mut user = SimDuration::ZERO;
        let mut sys = SimDuration::ZERO;
        let mut losses = 0;
        let mut wins = 0;
        let mut additions = 0;
        let mut ctx = 0;
        let mut lat_sum = SimDuration::ZERO;
        let mut lat_n: u64 = 0;
        let mut max_q = 0;
        let mut coalesced = 0;
        let mut piggybacked = 0;
        let mut open_accesses = 0;
        let mut open_faults = 0;
        for h in &self.hosts {
            for i in 0..h.proc_count() {
                let t = h.times(i);
                user += t.user;
                sys += t.sys;
                let c = h.counters(i);
                losses += c.losses;
                wins += c.wins;
                additions += c.operations;
            }
            sys += h.server_time;
            ctx += h.ctx_switches;
            for l in &h.fault_latencies {
                lat_sum += *l;
                lat_n += 1;
            }
            max_q = max_q.max(h.max_server_queue);
            coalesced += h.requests_coalesced;
            piggybacked += h.requests_piggybacked;
            let (issued, _, faults) = h.open_counts();
            open_accesses += issued;
            open_faults += faults;
        }
        let open_hist = self.open_loop_hist();
        let net = self.net_stats();
        let wall_secs = wall.as_secs_f64();
        let frames_heard_max = self.hosts.iter().map(|h| h.frames_heard).max().unwrap_or(0);
        let frames_heard_mean =
            self.hosts.iter().map(|h| h.frames_heard).sum::<u64>() as f64 / nhosts as f64;
        ProtocolMetrics {
            label: label.to_string(),
            finished,
            wall,
            net_segments: self.segments.iter().map(|e| *e.stats()).collect(),
            bridge: self.bridge_stats().unwrap_or_default(),
            bridge_devices: self.bridge_device_stats(),
            fabric_events: self
                .fabric
                .as_ref()
                .map(|f| {
                    f.timeline()
                        .iter()
                        .map(|&(at, ev)| (at - SimTime::ZERO, ev))
                        .collect()
                })
                .unwrap_or_default(),
            fabric_reconvergences: self.fabric_reconvergences(),
            reconvergence_stall: self.fabric_stall(),
            frames_heard_mean,
            frames_heard_max,
            user: SimDuration::from_nanos(user.as_nanos() / nhosts),
            sys: SimDuration::from_nanos(sys.as_nanos() / nhosts),
            net,
            net_load_bps: net.load_bytes_per_sec(wall_secs),
            bytes_per_addition: if additions == 0 {
                f64::NAN
            } else {
                net.bytes as f64 / additions as f64
            },
            ctx_switches: ctx,
            ctx_per_addition: if additions == 0 {
                f64::NAN
            } else {
                ctx as f64 / additions as f64
            },
            avg_latency: SimDuration::from_nanos(
                lat_sum.as_nanos().checked_div(lat_n).unwrap_or(0),
            ),
            losses,
            wins,
            additions,
            space_pages,
            max_server_queue: max_q,
            requests_coalesced: coalesced,
            requests_piggybacked: piggybacked,
            open_accesses,
            open_faults,
            open_p50: SimDuration::from_nanos(open_hist.percentile(0.50)),
            open_p99: SimDuration::from_nanos(open_hist.percentile(0.99)),
            open_p999: SimDuration::from_nanos(open_hist.percentile(0.999)),
            open_max: SimDuration::from_nanos(open_hist.max()),
            server_queue_high_water: self.server_queue_high_water(),
            observer: self.observer.stats(),
        }
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Simulation(hosts={}, segments={}, now={}, queued={})",
            self.hosts.len(),
            self.segments.len(),
            self.now,
            self.events.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_nanos: u64, seq: u64) -> Ev {
        Ev {
            at: SimTime::ZERO + SimDuration::from_nanos(at_nanos),
            tier: 1,
            seq,
            kind: EvKind::BurstEnd { host: 0 },
        }
    }

    #[test]
    fn same_timestamp_events_pop_in_insertion_order() {
        // The regression this pins: with only `at` in the ordering, a
        // max-heap's pop order for equal keys is unspecified — same-tick
        // delivery order would depend on heap internals (and silently
        // change with capacity, insertion history, or std's sift
        // implementation). The monotonic `seq` tiebreaker makes equal
        // times pop strictly in insertion order. Push in an adversarial
        // (non-sorted, non-reverse) order to catch a heap that "usually"
        // gets it right.
        let mut heap = BinaryHeap::new();
        for seq in [3u64, 0, 4, 1, 2] {
            heap.push(ev(100, seq));
        }
        let popped: Vec<u64> = std::iter::from_fn(|| heap.pop()).map(|e| e.seq).collect();
        assert_eq!(popped, vec![0, 1, 2, 3, 4], "insertion order at one tick");
    }

    #[test]
    fn earlier_timestamp_beats_any_sequence() {
        let mut heap = BinaryHeap::new();
        heap.push(ev(200, 0)); // inserted first, fires later
        heap.push(ev(100, 1));
        assert_eq!(heap.pop().unwrap().seq, 1, "time dominates the tiebreak");
        assert_eq!(heap.pop().unwrap().seq, 0);
    }

    #[test]
    fn sequence_numbers_are_monotonic_across_pushes() {
        let mut sim = Simulation::new(SimConfig::paper(2));
        sim.push(SimTime::ZERO, EvKind::BurstEnd { host: 0 });
        sim.push(SimTime::ZERO, EvKind::BurstEnd { host: 1 });
        sim.push(SimTime::ZERO, EvKind::Timer { host: 0, proc: 0 });
        let seqs: Vec<u64> = std::iter::from_fn(|| sim.events.pop())
            .map(|e| e.seq)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(sim.event_stats().heap_pushes, 3);
    }
}
