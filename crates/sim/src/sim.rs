//! The discrete-event simulation driver.
//!
//! A [`Simulation`] owns the hosts and the Ethernet, and advances virtual
//! time through a single event heap. Three event kinds exist: a host CPU
//! finishing its current burst, a packet transit completing delivery, and
//! a sleep timer firing. Determinism: events at equal times are ordered
//! by a monotonic insertion sequence (same-tick pops are insertion-order,
//! never arbitrary), and all randomness (loss injection) flows from the
//! seed in [`mether_net::EtherConfig`].
//!
//! # Per-transit delivery
//!
//! The paper's central cost argument is that a broadcast DSM keeps host
//! load constant because *the network does the fan-out*: one frame on the
//! Ethernet updates every snooping host, and no machine performs
//! per-recipient work to make that happen. The event engine mirrors this:
//! one broadcast is **one** [`Deliver`](Recipients) event carrying one
//! `Arc<Packet>` plus a [`Recipients`] set, fanned out to the snooping
//! hosts at pop time. The heap holds O(transits) events rather than
//! O(transits × hosts) — on a 16-host broadcast-heavy run the heap (and
//! the push/sift work feeding it) shrinks ~15×, which is exactly the
//! steady-state O(1)-per-broadcast behaviour the paper claims for its
//! hosts. [`DeliveryMode::PerHostCompat`] preserves the old
//! one-event-per-recipient schedule solely so regression tests can pin
//! the two orderings to identical outcomes.

use crate::calib::Calib;
use crate::host::{HostAction, HostSim};
use crate::metrics::ProtocolMetrics;
use crate::process::Workload;
use mether_core::{MetherConfig, Packet, PageId};
use mether_net::{EtherConfig, EtherSim, SimDuration, SimTime};
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Static description of a simulated deployment.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of workstations on the segment.
    pub hosts: usize,
    /// Host-side cost model.
    pub calib: Calib,
    /// Network model parameters.
    pub ether: EtherConfig,
    /// Mether page configuration.
    pub mether: MetherConfig,
}

impl SimConfig {
    /// The paper's testbed: `n` Sun-3/50s on a 10 Mbit/s Ethernet.
    pub fn paper(n: usize) -> Self {
        SimConfig {
            hosts: n,
            calib: Calib::sun3_sunos4(),
            ether: EtherConfig::ten_megabit(),
            mether: MetherConfig::new(),
        }
    }
}

/// Caps on a run, so degenerate protocols (Figure 6) terminate.
#[derive(Debug, Clone, Copy)]
pub struct RunLimits {
    /// Stop after this much virtual time.
    pub max_sim_time: SimDuration,
    /// Stop after this many events (backstop against livelock).
    pub max_events: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            max_sim_time: SimDuration::from_secs(600),
            max_events: 200_000_000,
        }
    }
}

/// Result summary of [`Simulation::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// True if every application process exited before the limits.
    pub finished: bool,
    /// Virtual time when the run stopped.
    pub wall: SimDuration,
    /// Events processed.
    pub events: u64,
}

/// The hosts one popped transit delivers to.
///
/// A broadcast Ethernet has no per-recipient state: every NIC on the
/// segment hears every frame. `Recipients` keeps that O(1) on the event
/// heap — the common case is [`Recipients::AllExcept`] (everyone snoops,
/// the sender ignores its own frame), which costs two words however many
/// hosts share the segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recipients {
    /// Every host on the segment except the sender — the broadcast case.
    AllExcept(usize),
    /// Exactly one host. Used by [`DeliveryMode::PerHostCompat`] (one
    /// event per recipient, the pre-overhaul schedule) and available for
    /// future unicast transports.
    One(usize),
}

/// How packet transits become host deliveries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeliveryMode {
    /// One `Deliver` event per transit; the recipient set fans out at pop
    /// time. Heap growth per broadcast is O(1).
    #[default]
    PerTransit,
    /// One `Deliver` event per recipient, reproducing the pre-overhaul
    /// O(hosts)-events-per-broadcast schedule. Kept (and exercised by
    /// the seed-regression tests) to pin the refactor to byte-identical
    /// outcomes; delivery order is provably the same, so both modes must
    /// produce identical page states and metrics for any seed.
    PerHostCompat,
}

#[derive(Debug)]
enum EvKind {
    BurstEnd {
        host: usize,
    },
    /// One transit finishing delivery: the packet (and its page payload)
    /// is materialised once, shared by reference with every recipient,
    /// and fanned out when the event pops — the heap never carries
    /// per-recipient arrival events in [`DeliveryMode::PerTransit`].
    Deliver {
        to: Recipients,
        pkt: Arc<Packet>,
    },
    Timer {
        host: usize,
        proc: usize,
    },
}

struct Ev {
    at: SimTime,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// Event-heap traffic counters (diagnostics; the broadcast-heap bench
/// and the per-transit acceptance tests read these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventStats {
    /// Total events pushed onto the heap.
    pub heap_pushes: u64,
    /// Events pushed specifically to deliver packet transits (the
    /// component the per-transit overhaul shrinks by ~hosts×).
    pub delivery_pushes: u64,
    /// Packet transits that reached at least one recipient.
    pub transits: u64,
    /// Peak heap depth observed.
    pub max_heap_depth: usize,
}

/// A complete simulated deployment, ready to run.
pub struct Simulation {
    hosts: Vec<HostSim>,
    ether: EtherSim,
    events: BinaryHeap<Ev>,
    seq: u64,
    now: SimTime,
    delivery: DeliveryMode,
    ev_stats: EventStats,
}

impl Simulation {
    /// Builds a quiet deployment from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.hosts` is zero.
    pub fn new(cfg: SimConfig) -> Self {
        assert!(cfg.hosts > 0, "a simulation needs at least one host");
        let hosts = (0..cfg.hosts)
            .map(|i| HostSim::new(i, cfg.calib.clone(), cfg.mether.clone()))
            .collect();
        Simulation {
            hosts,
            ether: EtherSim::new(cfg.ether),
            events: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            delivery: DeliveryMode::default(),
            ev_stats: EventStats::default(),
        }
    }

    /// Selects how transits are scheduled (see [`DeliveryMode`]). The
    /// default, [`DeliveryMode::PerTransit`], is what production runs
    /// use; [`DeliveryMode::PerHostCompat`] exists for the seed-pinned
    /// regression tests. Call before [`Simulation::run`].
    pub fn set_delivery_mode(&mut self, mode: DeliveryMode) {
        self.delivery = mode;
    }

    /// Event-heap traffic counters so far.
    pub fn event_stats(&self) -> EventStats {
        self.ev_stats
    }

    /// Adds an application process to `host`; returns its process index.
    pub fn add_process(&mut self, host: usize, workload: Box<dyn Workload>) -> usize {
        self.hosts[host].add_process(workload)
    }

    /// Seeds `page` as created (consistent) on `host`.
    pub fn create_owned(&mut self, host: usize, page: PageId) {
        self.hosts[host].table.create_owned(page);
    }

    /// Immutable access to a host (metrics, page table inspection).
    pub fn host(&self, i: usize) -> &HostSim {
        &self.hosts[i]
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Network traffic so far.
    pub fn net_stats(&self) -> mether_net::NetStats {
        *self.ether.stats()
    }

    fn push(&mut self, at: SimTime, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.ev_stats.heap_pushes += 1;
        if matches!(kind, EvKind::Deliver { .. }) {
            self.ev_stats.delivery_pushes += 1;
        }
        self.events.push(Ev { at, seq, kind });
        self.ev_stats.max_heap_depth = self.ev_stats.max_heap_depth.max(self.events.len());
    }

    /// Dispatches `host` if its CPU is idle, scheduling the burst end and
    /// any sleep timers it requested.
    fn kick(&mut self, host: usize) {
        if let Some(end) = self.hosts[host].dispatch(self.now) {
            self.push(end, EvKind::BurstEnd { host });
        }
        for (proc, wake_at) in self.hosts[host].take_sleeps() {
            self.push(wake_at, EvKind::Timer { host, proc });
        }
    }

    fn apply(&mut self, actions: Vec<HostAction>) {
        for a in actions {
            match a {
                HostAction::Transmit(pkt) => {
                    let tx = self.ether.transmit(self.now, &pkt);
                    if let Some(at) = tx.delivered_at {
                        let from = pkt.from().0 as usize;
                        if self.hosts.len() <= 1 {
                            continue; // nobody on the segment to snoop
                        }
                        self.ev_stats.transits += 1;
                        let shared = Arc::new(pkt);
                        match self.delivery {
                            DeliveryMode::PerTransit => {
                                // One heap event per transit, however
                                // many hosts snoop it: the network does
                                // the fan-out (at pop time), not the
                                // event queue.
                                self.push(
                                    at,
                                    EvKind::Deliver {
                                        to: Recipients::AllExcept(from),
                                        pkt: shared,
                                    },
                                );
                            }
                            DeliveryMode::PerHostCompat => {
                                // Pre-overhaul schedule: N−1 arrival
                                // events with consecutive sequence
                                // numbers. They pop contiguously in host
                                // order — exactly the order the
                                // per-transit fan-out walks.
                                for h in 0..self.hosts.len() {
                                    if h != from {
                                        self.push(
                                            at,
                                            EvKind::Deliver {
                                                to: Recipients::One(h),
                                                pkt: Arc::clone(&shared),
                                            },
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Runs until every process is done or a limit trips.
    pub fn run(&mut self, limits: RunLimits) -> RunOutcome {
        let deadline = SimTime::ZERO + limits.max_sim_time;
        let mut processed: u64 = 0;
        for h in 0..self.hosts.len() {
            self.kick(h);
        }
        while let Some(ev) = self.events.pop() {
            if ev.at > deadline || processed >= limits.max_events {
                self.now = self.now.max(ev.at.max(deadline));
                return RunOutcome {
                    finished: false,
                    wall: self.now - SimTime::ZERO,
                    events: processed,
                };
            }
            processed += 1;
            self.now = ev.at;
            match ev.kind {
                EvKind::BurstEnd { host } => {
                    let actions = self.hosts[host].finish_burst(self.now);
                    self.apply(actions);
                    self.kick(host);
                }
                EvKind::Deliver { to, pkt } => match to {
                    Recipients::One(h) => {
                        self.hosts[h].deliver_packet(self.now, pkt);
                        self.kick(h);
                    }
                    Recipients::AllExcept(from) => {
                        // Fan out at pop time, in host order — the same
                        // order the per-host schedule pops its
                        // consecutive-sequence arrival events in. The
                        // early exit mirrors the compat schedule too: it
                        // stops consuming events the moment every
                        // process is done, abandoning undelivered
                        // arrivals just as run() would abandon them on
                        // the heap.
                        for h in 0..self.hosts.len() {
                            if h == from {
                                continue;
                            }
                            self.hosts[h].deliver_packet(self.now, Arc::clone(&pkt));
                            self.kick(h);
                            if self.hosts.iter().all(HostSim::all_done) {
                                break;
                            }
                        }
                    }
                },
                EvKind::Timer { host, proc } => {
                    self.hosts[host].timer_fired(proc);
                    self.kick(host);
                }
            }
            if self.hosts.iter().all(HostSim::all_done) {
                return RunOutcome {
                    finished: true,
                    wall: self.now - SimTime::ZERO,
                    events: processed,
                };
            }
        }
        RunOutcome {
            finished: self.hosts.iter().all(HostSim::all_done),
            wall: self.now - SimTime::ZERO,
            events: processed,
        }
    }

    /// Aggregates a finished (or capped) run into the paper's table
    /// format. `space_pages` is the protocol's Mether footprint (the
    /// paper's "Space" row).
    pub fn metrics(&self, label: &str, finished: bool, space_pages: u32) -> ProtocolMetrics {
        let wall = self.now - SimTime::ZERO;
        let nhosts = self.hosts.len().max(1) as u64;
        let mut user = SimDuration::ZERO;
        let mut sys = SimDuration::ZERO;
        let mut losses = 0;
        let mut wins = 0;
        let mut additions = 0;
        let mut ctx = 0;
        let mut lat_sum = SimDuration::ZERO;
        let mut lat_n: u64 = 0;
        let mut max_q = 0;
        for h in &self.hosts {
            for i in 0..h.proc_count() {
                let t = h.times(i);
                user += t.user;
                sys += t.sys;
                let c = h.counters(i);
                losses += c.losses;
                wins += c.wins;
                additions += c.operations;
            }
            sys += h.server_time;
            ctx += h.ctx_switches;
            for l in &h.fault_latencies {
                lat_sum += *l;
                lat_n += 1;
            }
            max_q = max_q.max(h.max_server_queue);
        }
        let net = self.net_stats();
        let wall_secs = wall.as_secs_f64();
        ProtocolMetrics {
            label: label.to_string(),
            finished,
            wall,
            user: SimDuration::from_nanos(user.as_nanos() / nhosts),
            sys: SimDuration::from_nanos(sys.as_nanos() / nhosts),
            net,
            net_load_bps: net.load_bytes_per_sec(wall_secs),
            bytes_per_addition: if additions == 0 {
                f64::NAN
            } else {
                net.bytes as f64 / additions as f64
            },
            ctx_switches: ctx,
            ctx_per_addition: if additions == 0 {
                f64::NAN
            } else {
                ctx as f64 / additions as f64
            },
            avg_latency: SimDuration::from_nanos(
                lat_sum.as_nanos().checked_div(lat_n).unwrap_or(0),
            ),
            losses,
            wins,
            additions,
            space_pages,
            max_server_queue: max_q,
        }
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Simulation(hosts={}, now={}, queued={})",
            self.hosts.len(),
            self.now,
            self.events.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_nanos: u64, seq: u64) -> Ev {
        Ev {
            at: SimTime::ZERO + SimDuration::from_nanos(at_nanos),
            seq,
            kind: EvKind::BurstEnd { host: 0 },
        }
    }

    #[test]
    fn same_timestamp_events_pop_in_insertion_order() {
        // The regression this pins: with only `at` in the ordering, a
        // max-heap's pop order for equal keys is unspecified — same-tick
        // delivery order would depend on heap internals (and silently
        // change with capacity, insertion history, or std's sift
        // implementation). The monotonic `seq` tiebreaker makes equal
        // times pop strictly in insertion order. Push in an adversarial
        // (non-sorted, non-reverse) order to catch a heap that "usually"
        // gets it right.
        let mut heap = BinaryHeap::new();
        for seq in [3u64, 0, 4, 1, 2] {
            heap.push(ev(100, seq));
        }
        let popped: Vec<u64> = std::iter::from_fn(|| heap.pop()).map(|e| e.seq).collect();
        assert_eq!(popped, vec![0, 1, 2, 3, 4], "insertion order at one tick");
    }

    #[test]
    fn earlier_timestamp_beats_any_sequence() {
        let mut heap = BinaryHeap::new();
        heap.push(ev(200, 0)); // inserted first, fires later
        heap.push(ev(100, 1));
        assert_eq!(heap.pop().unwrap().seq, 1, "time dominates the tiebreak");
        assert_eq!(heap.pop().unwrap().seq, 0);
    }

    #[test]
    fn sequence_numbers_are_monotonic_across_pushes() {
        let mut sim = Simulation::new(SimConfig::paper(2));
        sim.push(SimTime::ZERO, EvKind::BurstEnd { host: 0 });
        sim.push(SimTime::ZERO, EvKind::BurstEnd { host: 1 });
        sim.push(SimTime::ZERO, EvKind::Timer { host: 0, proc: 0 });
        let seqs: Vec<u64> = std::iter::from_fn(|| sim.events.pop())
            .map(|e| e.seq)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(sim.event_stats().heap_pushes, 3);
    }
}
