//! The workload abstraction: user programs as resumable state machines.
//!
//! The simulator cannot run real code against virtual time, so a simulated
//! user program is a [`Workload`]: each call to [`Workload::step`] returns
//! the next thing the process does — burn CPU, touch the Mether address
//! space, sleep, or exit. Blocking is implicit: when a DSM operation
//! faults, the process blocks and the *same* operation is re-issued after
//! wakeup, exactly like a faulting instruction restarting.
//!
//! Workloads communicate results through [`StepCtx::last`], and report
//! protocol-level outcomes (the paper's losses and wins) through
//! [`StepCtx::counters`].

use mether_core::{MapMode, PageId, PageLength, VAddr, View};
use mether_net::{SimDuration, SimTime};

/// One simulated user process.
pub trait Workload: Send {
    /// Returns the process's next action. Called when the process is
    /// scheduled: initially, after each completed step, and after each
    /// wakeup from a blocking operation (the operation will have been
    /// retried and its result placed in [`StepCtx::last`]).
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step;

    /// A short label for traces and metrics.
    fn label(&self) -> &str {
        "workload"
    }
}

/// What a process does next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Burn CPU for this long (charged to user time).
    Compute(SimDuration),
    /// Sleep without holding the CPU (a kernel sleep; wall time only).
    Sleep(SimDuration),
    /// Perform a DSM operation; result arrives in [`StepCtx::last`].
    Op(DsmOp),
    /// Exit successfully.
    Done,
}

/// A Mether operation issued by a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsmOp {
    /// Read a 32-bit word through the given view and mapping.
    Read {
        /// Page to read.
        page: PageId,
        /// View (full/short × demand/data) used for the access.
        view: View,
        /// Consistent (writeable) or inconsistent (read-only) mapping.
        mode: MapMode,
        /// Byte offset of the word.
        offset: u32,
    },
    /// Write a 32-bit word through the consistent mapping.
    Write {
        /// Page to write.
        page: PageId,
        /// View used for the faulting access (demand-driven only).
        view: View,
        /// Byte offset of the word.
        offset: u32,
        /// Value to store.
        value: u32,
    },
    /// PURGE the page through a mapping.
    Purge {
        /// Page to purge.
        page: PageId,
        /// Read-only purge (invalidate) or writeable purge (broadcast).
        mode: MapMode,
        /// For writeable purges: how much of the page the server
        /// broadcasts.
        length: PageLength,
    },
    /// Lock the page into the address space (must hold the consistent
    /// copy).
    Lock {
        /// Page to lock.
        page: PageId,
        /// View length to lock (Figure 1 rules).
        length: PageLength,
    },
    /// Release a lock.
    Unlock {
        /// Page to unlock.
        page: PageId,
    },
}

impl DsmOp {
    /// Convenience: read through an address (view bits decoded from it).
    pub fn read_addr(addr: VAddr, mode: MapMode) -> DsmOp {
        DsmOp::Read {
            page: addr.page(),
            view: addr.view(),
            mode,
            offset: addr.offset(),
        }
    }

    /// Convenience: write through an address.
    pub fn write_addr(addr: VAddr, value: u32) -> DsmOp {
        DsmOp::Write {
            page: addr.page(),
            view: addr.view(),
            offset: addr.offset(),
            value,
        }
    }
}

/// Result of the most recent [`DsmOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OpResult {
    /// No operation has completed yet.
    #[default]
    None,
    /// A read completed with this value.
    Value(u32),
    /// A write, purge, or unlock completed.
    Done,
    /// A lock was granted.
    LockOk,
    /// A lock failed (consistent copy or subsets absent).
    LockFailed,
}

/// Counters a workload accumulates; the paper's Loss/Win ratio lives here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkloadCounters {
    /// Checks that saw an unchanged variable.
    pub losses: u64,
    /// Checks that saw a changed variable.
    pub wins: u64,
    /// Synchronisation operations completed (increments, messages, ...).
    pub operations: u64,
}

impl WorkloadCounters {
    /// losses ÷ wins, the paper's Loss/Win ratio ( `inf` if no wins).
    pub fn loss_win_ratio(&self) -> f64 {
        if self.wins == 0 {
            f64::INFINITY
        } else {
            self.losses as f64 / self.wins as f64
        }
    }
}

/// Context handed to [`Workload::step`].
#[derive(Debug)]
pub struct StepCtx<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// Result of the last completed operation.
    pub last: OpResult,
    /// The workload's counters.
    pub counters: &'a mut WorkloadCounters,
}

impl StepCtx<'_> {
    /// The last read value.
    ///
    /// # Panics
    ///
    /// Panics if the previous step was not a completed read — a logic
    /// error in the workload state machine.
    pub fn value(&self) -> u32 {
        match self.last {
            OpResult::Value(v) => v,
            other => panic!("expected a read result, got {other:?}"),
        }
    }

    /// Records a loss (saw an unchanged variable).
    pub fn lose(&mut self) {
        self.counters.losses += 1;
    }

    /// Records a win (saw a changed variable).
    pub fn win(&mut self) {
        self.counters.wins += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mether_core::{DriveMode, PageLength};

    #[test]
    fn op_from_addr_round_trip() {
        let addr = VAddr::new(PageId::new(3), View::short_data(), 8).unwrap();
        match DsmOp::read_addr(addr, MapMode::ReadOnly) {
            DsmOp::Read {
                page,
                view,
                mode,
                offset,
            } => {
                assert_eq!(page, PageId::new(3));
                assert_eq!(view.length, PageLength::Short);
                assert_eq!(view.drive, DriveMode::Data);
                assert_eq!(mode, MapMode::ReadOnly);
                assert_eq!(offset, 8);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn loss_win_ratio() {
        let mut c = WorkloadCounters::default();
        assert!(c.loss_win_ratio().is_infinite());
        c.wins = 2;
        c.losses = 1000;
        assert_eq!(c.loss_win_ratio(), 500.0);
    }

    #[test]
    fn ctx_value_accessor() {
        let mut counters = WorkloadCounters::default();
        let mut ctx = StepCtx {
            now: SimTime::ZERO,
            last: OpResult::Value(7),
            counters: &mut counters,
        };
        assert_eq!(ctx.value(), 7);
        ctx.lose();
        ctx.win();
        assert_eq!(ctx.counters.losses, 1);
        assert_eq!(ctx.counters.wins, 1);
    }

    #[test]
    #[should_panic(expected = "expected a read result")]
    fn ctx_value_panics_without_read() {
        let mut counters = WorkloadCounters::default();
        let ctx = StepCtx {
            now: SimTime::ZERO,
            last: OpResult::Done,
            counters: &mut counters,
        };
        let _ = ctx.value();
    }
}
