//! Fixed-bucket log-scale latency histogram for open-loop SLO reporting.
//!
//! The open-loop driver stamps every demand fault at issue and at
//! satisfaction and must accumulate millions of samples without touching
//! the allocator on the hot path. This histogram is an HDR-lite design:
//! values below 32 ns land in exact unit buckets; above that, each
//! power-of-two octave is split into 32 linear sub-buckets, so relative
//! resolution is bounded by 1/32 (~3%) everywhere. The bucket array is
//! allocated once at construction and never grows.
//!
//! Histograms are mergeable (bucket-wise addition plus max-of-maxes),
//! which is what lets `ParallelMode::Workers(n)` lanes each keep a local
//! histogram and still produce the exact same percentile report as a
//! serial run: merging is associative and commutative, and the digest is
//! computed over bucket counts, not insertion order.

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` linear buckets.
const SUB_BITS: u32 = 5;
/// Number of linear sub-buckets per octave (and the exact-bucket region size).
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: exact region plus one octave row per possible
/// shift `k` in `0..=63 - SUB_BITS` (the top row ends at 2^64 - 1).
const BUCKETS: usize = (SUB as usize) * (65 - SUB_BITS as usize);

/// Log-scale latency histogram with exact counts and bounded relative error.
///
/// Values are recorded in nanoseconds (any `u64` unit works; the unit is
/// the caller's contract). Percentile extraction returns the upper bound
/// of the bucket holding the nearest-rank sample, clamped to the exact
/// recorded maximum, so reported tails never exceed reality.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram. Allocates the bucket array once.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0u64; BUCKETS]),
            total: 0,
            max: 0,
        }
    }

    /// Bucket index for a value. Exact below `SUB`; log-linear above.
    fn bucket_of(v: u64) -> usize {
        if v < SUB {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros();
            let k = msb - SUB_BITS;
            let offset = (v >> k) - SUB;
            (SUB as usize) * (k as usize + 1) + offset as usize
        }
    }

    /// Inclusive upper bound of bucket `b` (the largest value mapping to it).
    fn upper_bound(b: usize) -> u64 {
        if b < SUB as usize {
            b as u64
        } else {
            let k = (b / SUB as usize - 1) as u32;
            let offset = (b % SUB as usize) as u64;
            // The top bucket's bound is 2^64; the wrapped shift is 0 and
            // wrapping_sub yields u64::MAX, which is exactly right.
            ((SUB + offset + 1) << k).wrapping_sub(1)
        }
    }

    /// Records one sample. No allocation; O(1).
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Folds another histogram into this one. Associative and commutative,
    /// so lane-local histograms can merge in any order with identical results.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Nearest-rank percentile: the upper bound of the bucket containing the
    /// `ceil(q * count)`-th sample, clamped to the exact maximum. Returns 0
    /// when empty. `q` is in `[0, 1]`.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::upper_bound(b).min(self.max);
            }
        }
        self.max
    }

    /// FNV-1a digest over bucket counts, total, and max. Two histograms with
    /// the same sample multiset produce the same digest regardless of the
    /// order samples were recorded or merged in.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.total);
        mix(self.max);
        for (b, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                mix(b as u64);
                mix(c);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_region_is_exact() {
        for v in 0..SUB {
            assert_eq!(LatencyHistogram::bucket_of(v), v as usize);
            assert_eq!(LatencyHistogram::upper_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_round_trip() {
        // Every value maps into a bucket whose range contains it, and
        // adjacent buckets tile the line with no gaps or overlaps.
        let probes = [
            31u64,
            32,
            33,
            63,
            64,
            65,
            127,
            128,
            1_000,
            4_095,
            4_096,
            1 << 20,
            (1 << 20) + 12_345,
            u64::MAX / 2,
            u64::MAX,
        ];
        for &v in &probes {
            let b = LatencyHistogram::bucket_of(v);
            assert!(
                LatencyHistogram::upper_bound(b) >= v,
                "value {v} above bucket {b} bound"
            );
            if b > 0 {
                assert!(
                    LatencyHistogram::upper_bound(b - 1) < v,
                    "value {v} also fits bucket {}",
                    b - 1
                );
            }
        }
        // Boundary tiling: the first value of each bucket is one past the
        // previous bucket's upper bound, across the whole valid range.
        for b in 1..BUCKETS {
            let prev_hi = LatencyHistogram::upper_bound(b - 1);
            assert_eq!(LatencyHistogram::bucket_of(prev_hi + 1), b);
        }
        assert_eq!(LatencyHistogram::upper_bound(BUCKETS - 1), u64::MAX);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_bounded() {
        // Upper bound overestimates a value by at most one sub-bucket width,
        // i.e. relative error < 1/SUB for values >= SUB.
        let mut v = SUB;
        while v < 1 << 40 {
            let hi = LatencyHistogram::upper_bound(LatencyHistogram::bucket_of(v));
            assert!(hi >= v);
            assert!((hi - v) as f64 / v as f64 <= 1.0 / SUB as f64 + f64::EPSILON);
            v = v * 7 / 3 + 1;
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let samples_a = [3u64, 50, 900, 1 << 22, 7];
        let samples_b = [12u64, 12, 4_000_000, 31];
        let samples_c = [1u64, 1 << 33, 600];
        let fill = |s: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &v in s {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (fill(&samples_a), fill(&samples_b), fill(&samples_c));

        // (a + b) + c
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        // c + b + a
        let mut cba = c.clone();
        cba.merge(&b);
        cba.merge(&a);

        assert_eq!(ab_c.digest(), a_bc.digest());
        assert_eq!(ab_c.digest(), cba.digest());
        assert_eq!(ab_c.count(), 12);
        assert_eq!(ab_c.max(), 1 << 33);
    }

    #[test]
    fn percentiles_match_sorted_vec_oracle() {
        // Deterministic pseudo-random sample set; compare nearest-rank
        // percentiles against the sorted vector, allowing bucket resolution.
        let mut state: u64 = 0x5eed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Spread across several octaves: low bits pick magnitude.
            let mag = (state >> 60) % 5; // 0..=4
            (state >> 32) % (1u64 << (8 + 4 * mag)) + 1
        };
        let mut h = LatencyHistogram::new();
        let mut all: Vec<u64> = Vec::new();
        for _ in 0..10_000 {
            let v = next();
            h.record(v);
            all.push(v);
        }
        all.sort_unstable();
        for &q in &[0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * all.len() as f64).ceil() as usize).clamp(1, all.len());
            let oracle = all[rank - 1];
            let got = h.percentile(q);
            assert!(got >= oracle, "p{q}: got {got} < oracle {oracle}");
            // Overestimate bounded by one sub-bucket (plus exact-region slack).
            let slack = oracle / SUB + 1;
            assert!(
                got <= oracle + slack,
                "p{q}: got {got} > oracle {oracle} + {slack}"
            );
        }
        assert_eq!(h.percentile(1.0), *all.last().unwrap());
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.999), 0);
    }

    #[test]
    fn digest_is_order_independent() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in [5u64, 77, 3000, 5, 1 << 25] {
            a.record(v);
        }
        for v in [1u64 << 25, 5, 5, 3000, 77] {
            b.record(v);
        }
        assert_eq!(a.digest(), b.digest());
        // And sensitive to content.
        b.record(6);
        assert_ne!(a.digest(), b.digest());
    }
}
