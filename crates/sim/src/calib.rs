//! Calibration constants for the simulated Sun-3/50 running SunOS 4.0.
//!
//! The paper's absolute numbers come from a specific, long-gone platform:
//! Sun 3/50 workstations (a ~1.5 MIPS 68020), SunOS 4.0 (which the paper
//! notes was "constantly paging"), a user-level Mether server doing UDP
//! broadcast I/O, and a 10 Mbit/s Ethernet. This module collects every
//! host-side cost the discrete-event model charges, with the paper
//! evidence for each default:
//!
//! * "a single processor iteration takes approximately 50 microseconds per
//!   increment, including overhead" → [`Calib::spin_iteration`];
//! * "context switch, which is hard to measure but as a rule of thumb
//!   takes a few milliseconds" → [`Calib::ctx_switch`];
//! * two processes on one machine took 81 s wall for 1024 increments
//!   (≈ 79 ms per increment) — the time for the scheduler to rotate away
//!   from a spinning process → [`Calib::quantum`];
//! * "the client may be pre-empting the user level server and thus
//!   preventing itself from getting the newest version of a page" — a
//!   ready server does *not* preempt instantly; SunOS priority aging lets
//!   it in after roughly [`Calib::server_patience`];
//! * the server legs (decode a UDP datagram, mmap/copy a page, write a
//!   datagram) cost milliseconds each on this hardware
//!   → the `server_*` fields.
//!
//! The reproduction targets the *shape* of the paper's tables (orderings,
//! ratios, who degenerates), not absolute equality; every experiment in
//! `EXPERIMENTS.md` records the calibration used.

use mether_net::SimDuration;
use serde::{Deserialize, Serialize};

/// Host-side cost model for the simulator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Calib {
    /// One iteration of a user-level spin loop (load, compare, branch,
    /// loop overhead) — the paper's 50 µs per increment including
    /// overhead.
    pub spin_iteration: SimDuration,
    /// Charged (to user time) for a DSM access that hits a present page:
    /// an ordinary memory reference plus protocol bookkeeping.
    pub mem_ref: SimDuration,
    /// A context switch, including its share of SunOS 4.0's paging noise.
    pub ctx_switch: SimDuration,
    /// Round-robin quantum between equal-priority compute-bound
    /// processes. Sets the pace of the two-processes-one-host baseline.
    pub quantum: SimDuration,
    /// How long a runnable server waits while an application spins before
    /// priority aging gets it the CPU.
    pub server_patience: SimDuration,
    /// Kernel entry for a faulting access, PURGE, or lock (charged to
    /// system time).
    pub fault_trap: SimDuration,
    /// Server cost to build and send a request datagram.
    pub server_send_request: SimDuration,
    /// Server cost to handle a request it must answer (lookup + build
    /// reply), excluding the per-byte copy; wire time is charged
    /// separately by the network model.
    pub server_handle_request: SimDuration,
    /// Server cost to install a received page, excluding the per-byte
    /// copy.
    pub server_install_base: SimDuration,
    /// Additional cost per kilobyte moved through the server, charged on
    /// both the install and the reply-building paths. This models the
    /// SunOS 4.0 UDP stack on a Sun-3/50: an 8 KB broadcast datagram is
    /// six IP fragments, each allocated, copied, and reassembled —
    /// tens of milliseconds end to end, which is what makes the paper's
    /// full-page protocol 1 so slow (120 ms average fault latency).
    pub server_install_per_kb: SimDuration,
    /// Server cost to broadcast a page for a pending PURGE and issue
    /// DO-PURGE.
    pub server_purge_broadcast: SimDuration,
    /// Server cost to inspect and discard a snooped packet it does not
    /// care about.
    pub server_snoop: SimDuration,
    /// Demand-fault retry interval: a process blocked on a
    /// request-bearing fault (demand or consistent fetch) for this long
    /// abandons the wait (`PageTable::cancel_wait`) and re-issues the
    /// faulting access, which retransmits the request — the recovery
    /// path that lets a workload ride through a lost reply or a
    /// partitioned fabric. `None` (the default, and the paper's
    /// behaviour: the raw protocols have no retransmit timer) blocks
    /// forever; the fault-tolerance experiments enable it.
    pub fault_retry: Option<SimDuration>,
    /// NIC-level request coalescing: an arriving `PageRequest` identical
    /// to one already queued for the server is dropped and counted,
    /// since the queued request's broadcast reply satisfies every
    /// snooper a duplicate could (consistency transfers are directed,
    /// so those coalesce per requesting host only). `false` is the
    /// paper's behaviour — its servers process every datagram
    /// individually, and protocol 3's measured divergence on the
    /// counting benchmark depends on that duplicated server load.
    /// Deployments with retry timers enable it: clients retrying faster
    /// than the ~13 ms per-request serve cost otherwise grow the server
    /// queue without bound.
    pub coalesce_requests: bool,
    /// Periodic holder re-broadcast: every `interval`, a host re-sends
    /// the `PageData` broadcast for each page whose consistent copy it
    /// still holds, at the page's *current* generation (no consistency
    /// state changes). `None` (the default, and the paper's behaviour —
    /// no retransmit of any kind) sends nothing. This is the recovery
    /// path for the hot-spin loss livelock: a data-driven reader
    /// spinning on a *present* stale copy transmits nothing and never
    /// blocks, so the fault-retry escalation cannot reach it and a lost
    /// waking broadcast strands it forever; the periodic re-broadcast
    /// eventually gets a fresh copy through.
    pub holder_rebroadcast: Option<SimDuration>,
    /// Serve-time reply piggybacking: when the server answers a
    /// `PageRequest` with a `PageData` reply, any *queued* requests for
    /// the same page that the reply also satisfies are dropped from the
    /// server queue and counted. This complements NIC-level coalescing
    /// ([`Calib::coalesce_requests`]), which only drops duplicates at
    /// enqueue time: under open-loop arrivals, identical requests keep
    /// landing during the 13–46 ms serve burst *after* the served
    /// request was already popped, and each such straggler would
    /// otherwise cost a full `server_handle_request` + per-KB reply
    /// build for a page the snoopers just installed. `false` is the
    /// paper's behaviour (every datagram is processed individually).
    pub piggyback_replies: bool,
}

impl Calib {
    /// The Sun-3/50 + SunOS 4.0 model used for all paper reproductions.
    pub fn sun3_sunos4() -> Self {
        Calib {
            spin_iteration: SimDuration::from_micros(48),
            mem_ref: SimDuration::from_micros(2),
            ctx_switch: SimDuration::from_millis(3),
            quantum: SimDuration::from_millis(72),
            server_patience: SimDuration::from_millis(22),
            fault_trap: SimDuration::from_millis(1),
            server_send_request: SimDuration::from_millis(7),
            server_handle_request: SimDuration::from_millis(13),
            server_install_base: SimDuration::from_millis(8),
            server_install_per_kb: SimDuration::from_micros(4200),
            server_purge_broadcast: SimDuration::from_millis(10),
            server_snoop: SimDuration::from_millis(2),
            fault_retry: None,
            coalesce_requests: false,
            holder_rebroadcast: None,
            piggyback_replies: false,
        }
    }

    /// Enables the demand-fault retry timer (see [`Calib::fault_retry`]).
    #[must_use]
    pub fn with_fault_retry(mut self, every: SimDuration) -> Self {
        self.fault_retry = Some(every);
        self
    }

    /// Enables NIC-level request coalescing (see
    /// [`Calib::coalesce_requests`]).
    #[must_use]
    pub fn with_request_coalescing(mut self) -> Self {
        self.coalesce_requests = true;
        self
    }

    /// Enables serve-time reply piggybacking (see
    /// [`Calib::piggyback_replies`]).
    #[must_use]
    pub fn with_reply_piggyback(mut self) -> Self {
        self.piggyback_replies = true;
        self
    }

    /// Enables periodic holder re-broadcast (see
    /// [`Calib::holder_rebroadcast`]).
    #[must_use]
    pub fn with_holder_rebroadcast(mut self, interval: SimDuration) -> Self {
        self.holder_rebroadcast = Some(interval);
        self
    }

    /// An idealised kernel-resident server (the paper's proposed future
    /// work: "a migration of the user level server code to the kernel").
    /// Server legs shrink and the patience penalty disappears, removing
    /// the context-switch bottleneck the paper identifies.
    pub fn kernel_server() -> Self {
        let mut c = Self::sun3_sunos4();
        c.server_patience = SimDuration::from_micros(200);
        c.server_send_request = SimDuration::from_micros(800);
        c.server_handle_request = SimDuration::from_millis(2);
        c.server_install_base = SimDuration::from_millis(1);
        c.server_purge_broadcast = SimDuration::from_millis(2);
        c.server_snoop = SimDuration::from_micros(300);
        c.server_install_per_kb = SimDuration::from_micros(400);
        c
    }

    /// Cost for the server to answer a request with a reply of `bytes`
    /// (lookup + datagram build + per-byte copy).
    pub fn reply_cost(&self, bytes: usize) -> SimDuration {
        self.server_handle_request
            + SimDuration::from_nanos(self.server_install_per_kb.as_nanos() * (bytes as u64) / 1024)
    }

    /// Install cost for a transfer of `bytes`.
    pub fn install_cost(&self, bytes: usize) -> SimDuration {
        self.server_install_base
            + SimDuration::from_nanos(self.server_install_per_kb.as_nanos() * (bytes as u64) / 1024)
    }
}

impl Default for Calib {
    fn default() -> Self {
        Self::sun3_sunos4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_process_baseline_arithmetic() {
        // 1024 iterations of (spin + mem ref) ≈ the paper's ~50 ms single
        // process run.
        let c = Calib::sun3_sunos4();
        let per_iter = c.spin_iteration + c.mem_ref;
        let total_ms = per_iter.as_millis_f64() * 1024.0;
        assert!((40.0..65.0).contains(&total_ms), "{total_ms} ms");
    }

    #[test]
    fn quantum_dominates_two_process_baseline() {
        // 1024 quantum rotations ≈ the paper's 81 s.
        let c = Calib::sun3_sunos4();
        let total_s = (c.quantum + c.ctx_switch).as_secs_f64() * 1024.0;
        assert!((60.0..100.0).contains(&total_s), "{total_s} s");
    }

    #[test]
    fn install_cost_scales_with_size() {
        let c = Calib::sun3_sunos4();
        let short = c.install_cost(32);
        let full = c.install_cost(8192);
        assert!(full > short);
        // Full page adds 8 KB × 4.2 ms/KB ≈ 33.5 ms over the base.
        let extra_ms = full.as_millis_f64() - short.as_millis_f64();
        assert!((33.0..35.0).contains(&extra_ms), "{extra_ms} ms");
    }

    #[test]
    fn kernel_server_is_cheaper_everywhere() {
        let u = Calib::sun3_sunos4();
        let k = Calib::kernel_server();
        assert!(k.server_patience < u.server_patience);
        assert!(k.server_handle_request < u.server_handle_request);
        assert!(k.server_send_request < u.server_send_request);
        assert!(k.server_install_base < u.server_install_base);
    }
}
