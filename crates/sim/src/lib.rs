//! Discrete-event simulator of SunOS 4.0 workstations running the Mether
//! distributed shared memory over a 10 Mbit/s Ethernet.
//!
//! The simulator reproduces the host-side dynamics the paper identifies as
//! decisive: the user-level server competing with spinning applications
//! for one CPU, millisecond context switches, and per-leg server costs.
//! User programs are [`Workload`] state machines; their DSM operations run
//! against the exact protocol logic in [`mether_core::PageTable`].
//!
//! # Example
//!
//! ```
//! use mether_sim::{Simulation, SimConfig, RunLimits, Step, StepCtx, Workload};
//! use mether_net::SimDuration;
//!
//! struct Idle(u32);
//! impl Workload for Idle {
//!     fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Step {
//!         if self.0 == 0 {
//!             Step::Done
//!         } else {
//!             self.0 -= 1;
//!             Step::Compute(SimDuration::from_micros(50))
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(SimConfig::paper(1));
//! sim.add_process(0, Box::new(Idle(100)));
//! let outcome = sim.run(RunLimits::default());
//! assert!(outcome.finished);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calib;
pub mod hist;
pub mod host;
pub mod metrics;
pub mod process;
mod sim;

pub use calib::Calib;
pub use hist::LatencyHistogram;
pub use host::{ArrivalStream, HostSim, OpenAccess, ProcState, ProcTimes};
pub use metrics::ProtocolMetrics;
pub use process::{DsmOp, OpResult, Step, StepCtx, Workload, WorkloadCounters};
pub use sim::{
    DeliveryMode, EventStats, ObserverStats, ParallelMode, Recipients, RunLimits, RunOutcome,
    SimConfig, Simulation, Topology,
};
