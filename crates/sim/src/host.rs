//! One simulated workstation: CPU, scheduler, kernel driver, user-level
//! Mether server, and application processes.
//!
//! The host model deliberately reproduces the *dynamics* the paper blames
//! for its numbers:
//!
//! * one CPU, round-robin scheduled with a quantum
//!   ([`crate::Calib::quantum`]) — a spinning process starves everyone
//!   else until the quantum expires;
//! * the Mether server is an ordinary user process: when an application
//!   spins, a runnable server waits [`crate::Calib::server_patience`]
//!   before SunOS priority aging lets it preempt ("the client may be
//!   pre-empting the user level server and thus preventing itself from
//!   getting the newest version of a page");
//! * every context switch costs real time and is counted — the paper's
//!   "context switches per addition" metric;
//! * all network I/O (requests, installs, purge broadcasts, snooping) is
//!   the server's work, queued and charged per item.
//!
//! The CPU executes *bursts*: a compute slice, a memory/trap cost for a
//! DSM operation, one server work item, or a context switch. The
//! simulation schedules one `BurstEnd` event per host at a time.

use crate::calib::Calib;
use crate::hist::LatencyHistogram;
use crate::process::{DsmOp, OpResult, Step, StepCtx, Workload, WorkloadCounters};
use mether_core::table::WaiterId;
use mether_core::{
    AccessOutcome, DriveMode, Effect, FaultKind, MapMode, MetherConfig, Packet, PageId, PageLength,
    PageTable, View, Want,
};
use mether_net::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::sync::Arc;

/// Base of the waiter-id namespace used by the open-loop driver. Process
/// waiters are process indices (small); open-loop waiters are
/// `OPEN_WAITER_BASE + issue-sequence`, so the two can share the page
/// table's wait lists without colliding.
pub(crate) const OPEN_WAITER_BASE: WaiterId = 1 << 32;

/// One access injected by the open-loop traffic driver: issued at `at`
/// regardless of what the host is doing (open-loop arrivals do not wait
/// for earlier accesses to complete — that is the point).
#[derive(Debug, Clone)]
pub struct OpenAccess {
    /// Arrival time of the access.
    pub at: SimTime,
    /// Target page.
    pub page: PageId,
    /// View (length + drive mode) of the access.
    pub view: View,
    /// Read or write.
    pub mode: MapMode,
    /// Cold accesses drop any stale local copy first, so a read misses
    /// and exercises the demand-fetch path even after warmup. Without
    /// this, a pure read stream goes all-hits once copies are installed
    /// and the home servers sit idle.
    pub cold: bool,
}

/// A deterministic source of open-loop arrivals for one host. The next
/// access's `at` must be non-decreasing; the stream ends with `None`.
pub trait ArrivalStream: Send {
    /// Produces the next access, or `None` when the stream is exhausted.
    fn next_access(&mut self) -> Option<OpenAccess>;
}

/// Open-loop driver state on one host: the arrival stream, the buffered
/// next arrival (so the simulation can schedule its event), outstanding
/// faults stamped at issue, and the latency histogram filled at
/// satisfaction.
struct OpenLoop {
    stream: Box<dyn ArrivalStream>,
    next: Option<OpenAccess>,
    hist: LatencyHistogram,
    outstanding: Vec<OpenWait>,
    issued: u64,
    hits: u64,
    faults: u64,
}

/// One outstanding open-loop fault: enough to re-issue the access when
/// its fault-retry timer fires (an unanswered request — a holder that
/// handed consistency off mid-flight, a reply lost to the wire — would
/// otherwise strand the waiter forever, exactly the hazard
/// [`Calib::fault_retry`] exists for on the process side).
struct OpenWait {
    waiter: WaiterId,
    issued_at: SimTime,
    page: PageId,
    view: View,
    mode: MapMode,
}

/// Are `a` and `b` page requests that one broadcast reply satisfies
/// both of? Same page, length, and want — plus same requester for
/// directed consistency transfers.
fn same_request(a: &Packet, b: &Packet) -> bool {
    let (
        Packet::PageRequest {
            from: af,
            page: ap,
            length: al,
            want: aw,
        },
        Packet::PageRequest {
            from: bf,
            page: bp,
            length: bl,
            want: bw,
        },
    ) = (a, b)
    else {
        return false;
    };
    ap == bp && al == bl && aw == bw && (*aw != Want::Consistent || af == bf)
}

/// Scheduler state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Runnable, waiting for the CPU.
    Ready,
    /// Blocked on a DSM operation.
    Blocked,
    /// In a timed kernel sleep.
    Sleeping,
    /// Exited.
    Done,
}

/// Per-process accounting the simulation reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProcTimes {
    /// CPU time in user mode (compute, spin loops, memory references).
    pub user: SimDuration,
    /// CPU time in system mode (traps, purges, lock calls).
    pub sys: SimDuration,
}

struct Proc {
    workload: Box<dyn Workload>,
    state: ProcState,
    counters: WorkloadCounters,
    times: ProcTimes,
    last: OpResult,
    /// Operation to retry when woken (faulting instruction restart).
    pending_op: Option<DsmOp>,
    blocked_at: SimTime,
    blocked_kind: Option<FaultKind>,
    /// Bumped every time the process blocks; retry timers carry the
    /// epoch they were armed at, so a timer from an earlier block never
    /// fires against a later one.
    block_epoch: u64,
    label: String,
}

/// Work items for the user-level Mether server.
#[derive(Debug, Clone)]
enum ServerWork {
    /// A datagram arrived; snoop/handle it. Shared with every other host
    /// that snooped the same broadcast — queued by reference, not copied.
    Packet(Arc<Packet>),
    /// Transmit a datagram built by the kernel driver (fault requests).
    SendPacket(Packet),
    /// A writeable PURGE is pending: broadcast a read-only copy and issue
    /// DO-PURGE.
    PurgeBroadcast { page: PageId, length: PageLength },
    /// Re-send the current-generation `PageData` broadcast for a page
    /// this host still holds consistent — the periodic loss-recovery
    /// retransmission of [`Calib::holder_rebroadcast`]. No consistency
    /// state changes; dropped silently if consistency moved away.
    HolderRebroadcast { page: PageId, length: PageLength },
}

/// Who the CPU is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    App(usize),
    Server,
}

/// What the current burst is.
enum Burst {
    AppCompute {
        proc: usize,
        d: SimDuration,
    },
    AppOp {
        proc: usize,
        op: DsmOp,
        d: SimDuration,
        sys: bool,
    },
    ServerItem {
        work: ServerWork,
        d: SimDuration,
    },
    CtxSwitch {
        to: Slot,
    },
}

/// Things the host asks the simulation to do after a burst.
#[derive(Debug)]
pub enum HostAction {
    /// Broadcast this packet on the Ethernet.
    Transmit(Packet),
}

/// One simulated workstation.
pub struct HostSim {
    /// Index of this host (also its `HostId`).
    pub index: usize,
    calib: Calib,
    /// The kernel driver state (shared protocol logic).
    pub table: PageTable,
    procs: Vec<Proc>,
    run_queue: VecDeque<usize>,
    server_queue: VecDeque<ServerWork>,
    server_ready_since: Option<SimTime>,
    current: Option<Slot>,
    current_burst: Option<Burst>,
    current_started: SimTime,
    last_ran: Option<Slot>,
    /// Context switches performed.
    pub ctx_switches: u64,
    /// Completed fault latencies (block → wake), page faults only.
    pub fault_latencies: Vec<SimDuration>,
    /// CPU time consumed by the server (reported as system time).
    pub server_time: SimDuration,
    /// Frames this host's NIC snooped off its segment — the per-host
    /// share of network load that segment filtering is meant to shrink.
    pub frames_heard: u64,
    /// Peak depth of the server work queue (degeneration diagnostic).
    pub max_server_queue: usize,
    /// Page requests dropped at the NIC because an identical request
    /// was already queued (its broadcast reply satisfies both).
    pub requests_coalesced: u64,
    /// Queued page requests dropped at serve time because the reply
    /// just broadcast for an identical request satisfies them too
    /// ([`Calib::piggyback_replies`]).
    pub requests_piggybacked: u64,
    /// Open-loop driver state, when a stream is attached.
    open: Option<OpenLoop>,
    /// Sleeps requested during dispatch (drained by `finish_burst`).
    pending_sleeps: Vec<(usize, SimTime)>,
    /// Fault-retry timers armed when a process blocked on a
    /// request-bearing fault: `(proc, fire_at, block_epoch)`. Drained
    /// by the simulation into retry events; only armed when
    /// [`Calib::fault_retry`] is set.
    pending_retries: Vec<(usize, SimTime, u64)>,
    /// Pending writeable-purge broadcast lengths, page → view length.
    purge_lengths: Vec<(PageId, PageLength)>,
    /// Pages this host has published as the consistent holder (a purge
    /// broadcast went out), with the length last broadcast — the
    /// candidate set for [`Calib::holder_rebroadcast`]. Entries whose
    /// consistency has moved away are skipped at queue time.
    published_pages: Vec<(PageId, PageLength)>,
    /// A process was just woken: it outranks the server once (SunOS
    /// priority boost for processes returning from a long sleep).
    wake_boost: bool,
}

impl HostSim {
    /// A host with no processes.
    pub fn new(index: usize, calib: Calib, cfg: MetherConfig) -> Self {
        HostSim {
            index,
            calib,
            table: PageTable::new(mether_core::HostId(index as u16), cfg),
            procs: Vec::new(),
            run_queue: VecDeque::new(),
            server_queue: VecDeque::new(),
            server_ready_since: None,
            current: None,
            current_burst: None,
            current_started: SimTime::ZERO,
            last_ran: None,
            ctx_switches: 0,
            fault_latencies: Vec::new(),
            server_time: SimDuration::ZERO,
            frames_heard: 0,
            max_server_queue: 0,
            requests_coalesced: 0,
            requests_piggybacked: 0,
            open: None,
            pending_sleeps: Vec::new(),
            pending_retries: Vec::new(),
            purge_lengths: Vec::new(),
            published_pages: Vec::new(),
            wake_boost: false,
        }
    }

    /// Adds an application process; returns its index.
    pub fn add_process(&mut self, workload: Box<dyn Workload>) -> usize {
        let label = workload.label().to_string();
        let idx = self.procs.len();
        self.procs.push(Proc {
            workload,
            state: ProcState::Ready,
            counters: WorkloadCounters::default(),
            times: ProcTimes::default(),
            last: OpResult::None,
            pending_op: None,
            blocked_at: SimTime::ZERO,
            blocked_kind: None,
            block_epoch: 0,
            label,
        });
        self.run_queue.push_back(idx);
        idx
    }

    /// Number of processes on this host.
    pub fn proc_count(&self) -> usize {
        self.procs.len()
    }

    /// True when every application process has exited and any attached
    /// open-loop stream is drained with no fault still outstanding.
    pub fn all_done(&self) -> bool {
        self.procs.iter().all(|p| p.state == ProcState::Done)
            && self
                .open
                .as_ref()
                .is_none_or(|ol| ol.next.is_none() && ol.outstanding.is_empty())
    }

    /// Attaches an open-loop arrival stream to this host and buffers its
    /// first arrival so the simulation can schedule the injection event.
    pub fn attach_open_loop(&mut self, mut stream: Box<dyn ArrivalStream>) {
        let next = stream.next_access();
        self.open = Some(OpenLoop {
            stream,
            next,
            hist: LatencyHistogram::new(),
            outstanding: Vec::new(),
            issued: 0,
            hits: 0,
            faults: 0,
        });
    }

    /// Arrival time of the next buffered open-loop access, if any.
    pub fn open_next_at(&self) -> Option<SimTime> {
        self.open
            .as_ref()
            .and_then(|ol| ol.next.as_ref().map(|a| a.at))
    }

    /// Injects the buffered open-loop access at `now`: stamps issue time,
    /// runs it against the page table (a miss blocks an open waiter and
    /// usually queues a request for the server), and buffers the next
    /// arrival from the stream. Returns transmissions exactly like
    /// `finish_burst`.
    pub fn open_arrival(&mut self, now: SimTime) -> Vec<HostAction> {
        let mut actions = Vec::new();
        let Some(acc) = self.open.as_mut().and_then(|ol| ol.next.take()) else {
            return actions;
        };
        let waiter = {
            let ol = self.open.as_mut().expect("open loop attached");
            let w = OPEN_WAITER_BASE + ol.issued;
            ol.issued += 1;
            w
        };
        if acc.cold && acc.mode == MapMode::ReadOnly {
            // Force the demand path: drop_stale_copy refuses to touch a
            // consistent holder's copy, so this only sheds snooped
            // replicas.
            self.table.drop_stale_copy(acc.page);
        }
        let mut effects = Vec::new();
        match self
            .table
            .access(acc.page, acc.view, acc.mode, waiter, &mut effects)
        {
            Ok(AccessOutcome::Ready) => {
                let ol = self.open.as_mut().expect("attached");
                ol.hits += 1;
            }
            Ok(AccessOutcome::Blocked(_)) => {
                let ol = self.open.as_mut().expect("attached");
                ol.faults += 1;
                ol.outstanding.push(OpenWait {
                    waiter,
                    issued_at: now,
                    page: acc.page,
                    view: acc.view,
                    mode: acc.mode,
                });
                // Open faults arm the same recovery timer as blocked
                // processes: their request's answerer can vanish
                // mid-flight (consistency handed off between request and
                // serve), and no process re-execution would ever re-send.
                if let Some(every) = self.calib.fault_retry {
                    self.pending_retries.push((waiter as usize, now + every, 0));
                }
            }
            Err(e) => panic!("open-loop access bug: {e}"),
        }
        let ol = self.open.as_mut().expect("attached");
        ol.next = ol.stream.next_access();
        self.apply_effects(now, effects, &mut actions);
        actions
    }

    /// A fault-retry timer fired for open-loop waiter `waiter`. Returns
    /// `None` if the fault was already satisfied (a stale timer — waiter
    /// ids are never reused, so presence in the outstanding list is the
    /// whole liveness check). Otherwise abandons the wait, re-issues the
    /// access under the *same* waiter id and issue timestamp (the
    /// histogram must charge the retry's cost to the fault), re-arms the
    /// timer if it blocks again, and returns the transmissions.
    pub fn open_retry_fired(&mut self, now: SimTime, waiter: WaiterId) -> Option<Vec<HostAction>> {
        let (page, view, mode) = {
            let ol = self.open.as_mut()?;
            let w = ol.outstanding.iter().find(|w| w.waiter == waiter)?;
            (w.page, w.view, w.mode)
        };
        self.table.cancel_wait(page, waiter);
        if mode == MapMode::ReadOnly {
            // Same escalation as a process data-wait retry: shed any
            // snooped copy so the re-execution demand-fetches and
            // re-stamps the fabric's learned interest.
            self.table.drop_stale_copy(page);
        }
        let mut effects = Vec::new();
        let mut actions = Vec::new();
        match self.table.access(page, view, mode, waiter, &mut effects) {
            Ok(AccessOutcome::Ready) => {
                // Satisfied between the wake we missed and this timer
                // (e.g. the copy arrived without a waiting wake): stamp
                // satisfaction now.
                let ol = self.open.as_mut().expect("checked above");
                if let Some(pos) = ol.outstanding.iter().position(|w| w.waiter == waiter) {
                    let w = ol.outstanding.swap_remove(pos);
                    ol.hist.record(now.since(w.issued_at).as_nanos());
                }
            }
            Ok(AccessOutcome::Blocked(_)) => {
                if let Some(every) = self.calib.fault_retry {
                    self.pending_retries.push((waiter as usize, now + every, 0));
                }
            }
            Err(e) => panic!("open-loop retry bug: {e}"),
        }
        self.apply_effects(now, effects, &mut actions);
        Some(actions)
    }

    /// The open-loop fault-latency histogram, when a stream is attached.
    pub fn open_hist(&self) -> Option<&LatencyHistogram> {
        self.open.as_ref().map(|ol| &ol.hist)
    }

    /// Unsatisfied open-loop faults: `(waiter, page, mode)` per entry.
    /// Empty after a healthy drain; the soak/debug harnesses print it
    /// when a run ends unfinished.
    pub fn open_outstanding(&self) -> Vec<(WaiterId, PageId, MapMode)> {
        self.open
            .as_ref()
            .map(|ol| {
                ol.outstanding
                    .iter()
                    .map(|w| (w.waiter, w.page, w.mode))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Open-loop accounting: `(issued, hits, faults)` accesses so far.
    pub fn open_counts(&self) -> (u64, u64, u64) {
        self.open
            .as_ref()
            .map(|ol| (ol.issued, ol.hits, ol.faults))
            .unwrap_or((0, 0, 0))
    }

    /// Counters of process `i`.
    pub fn counters(&self, i: usize) -> &WorkloadCounters {
        &self.procs[i].counters
    }

    /// CPU accounting of process `i`.
    pub fn times(&self, i: usize) -> ProcTimes {
        self.procs[i].times
    }

    /// Label of process `i`.
    pub fn proc_label(&self, i: usize) -> &str {
        &self.procs[i].label
    }

    /// A packet arrived from the network: queue it for the server.
    ///
    /// Under [`Calib::coalesce_requests`], page requests coalesce
    /// against the queue: every reply is a broadcast the whole wire
    /// snoops, so one queued request per distinct (page, length, want)
    /// already satisfies every waiter a duplicate could. Without this,
    /// blocked clients retrying faster than the server's per-request
    /// cost (13 ms at paper pace) grow the queue without bound and
    /// starve the server's own purge broadcasts behind hundreds of
    /// identical replies. Consistency transfers are directed at one
    /// requester, so those only coalesce with a retry from the same
    /// host. Off by default: the paper's servers processed every
    /// datagram individually, and its measured protocol rankings
    /// (notably P3's divergence) include that duplicated load.
    pub fn deliver_packet(&mut self, now: SimTime, pkt: Arc<Packet>) {
        self.frames_heard += 1;
        if self.calib.coalesce_requests && self.is_duplicate_request(pkt.as_ref()) {
            self.requests_coalesced += 1;
            return;
        }
        self.push_server_work(now, ServerWork::Packet(pkt));
    }

    /// Is `pkt` a page request identical (same page, length, and want —
    /// plus same requester for directed consistency transfers) to one
    /// already sitting in the server queue?
    fn is_duplicate_request(&self, pkt: &Packet) -> bool {
        if !matches!(pkt, Packet::PageRequest { .. }) {
            return false;
        }
        self.server_queue
            .iter()
            .any(|w| matches!(w, ServerWork::Packet(q) if same_request(pkt, q.as_ref())))
    }

    /// A sleep timer fired for process `proc`.
    ///
    /// The woken sleeper takes the one-shot boost (see `choose`), just
    /// like a fault wakeup: without it, a host whose server queue never
    /// drains — e.g. a page's home segment under a steady request load —
    /// starves the ready process indefinitely, because the idle branch
    /// of the scheduler always prefers pending server work.
    pub fn timer_fired(&mut self, proc: usize) {
        if self.procs[proc].state == ProcState::Sleeping {
            self.procs[proc].state = ProcState::Ready;
            self.run_queue.push_back(proc);
            self.wake_boost = true;
        }
    }

    /// Is the CPU idle (no burst outstanding)?
    pub fn cpu_idle(&self) -> bool {
        self.current_burst.is_none()
    }

    /// The periodic holder re-broadcast interval, when enabled.
    pub fn holder_rebroadcast_interval(&self) -> Option<SimDuration> {
        self.calib.holder_rebroadcast
    }

    /// Queues a [`ServerWork::HolderRebroadcast`] for every page this
    /// host published as the consistent holder and still holds, unless
    /// an identical retransmission is already waiting in the server
    /// queue (a saturated server must not accumulate them). Driven by
    /// the simulation's periodic re-broadcast event; returns how many
    /// were queued.
    pub fn queue_holder_rebroadcasts(&mut self, now: SimTime) -> usize {
        let mut queued = 0;
        for i in 0..self.published_pages.len() {
            let (page, length) = self.published_pages[i];
            if !self.table.is_consistent_holder(page) || self.table.purge_pending(page) {
                continue;
            }
            let already = self
                .server_queue
                .iter()
                .any(|w| matches!(w, ServerWork::HolderRebroadcast { page: p, .. } if *p == page));
            if already {
                continue;
            }
            self.push_server_work(now, ServerWork::HolderRebroadcast { page, length });
            queued += 1;
        }
        queued
    }

    /// Drains sleep requests made during dispatch; the simulation turns
    /// them into timer events.
    pub fn take_sleeps(&mut self) -> Vec<(usize, SimTime)> {
        std::mem::take(&mut self.pending_sleeps)
    }

    /// Drains fault-retry timers armed while blocking; the simulation
    /// turns them into retry events.
    pub fn take_retries(&mut self) -> Vec<(usize, SimTime, u64)> {
        std::mem::take(&mut self.pending_retries)
    }

    /// A fault-retry timer fired for process `proc` (armed at
    /// `epoch`). If the process is still blocked on that same fault,
    /// the wait is abandoned ([`mether_core::PageTable::cancel_wait`],
    /// clearing the request-dedup latch) and the process re-issues the
    /// faulting access, which retransmits the request — the recovery
    /// path for a reply lost to a dead bridge or a partitioned fabric.
    ///
    /// A data wait needs one extra step: the process blocked over a
    /// stale-but-present copy without transmitting anything, so
    /// re-executing the read would just block again. The retry drops
    /// the stale copy ([`mether_core::PageTable::drop_stale_copy`]),
    /// turning the re-execution into a demand fetch whose request also
    /// re-stamps the fabric's learned interest — the recovery path for
    /// a waking broadcast filtered by an aged-out bridge.
    ///
    /// Returns true if the process was unblocked for the retry.
    pub fn retry_fired(&mut self, proc: usize, epoch: u64) -> bool {
        let p = &mut self.procs[proc];
        if p.state != ProcState::Blocked
            || p.block_epoch != epoch
            || !matches!(
                p.blocked_kind,
                Some(FaultKind::DemandFetch)
                    | Some(FaultKind::ConsistentFetch)
                    | Some(FaultKind::DataWait)
            )
        {
            return false;
        }
        let page = match &p.pending_op {
            Some(DsmOp::Read { page, .. }) | Some(DsmOp::Write { page, .. }) => *page,
            _ => return false,
        };
        let was_data_wait = p.blocked_kind == Some(FaultKind::DataWait);
        p.state = ProcState::Ready;
        p.blocked_kind = None;
        self.table.cancel_wait(page, proc as WaiterId);
        if was_data_wait {
            // A re-executed data-view read transmits nothing — with the
            // copy still absent (or stale) it blocks exactly as before.
            // Escalate this one execution to demand drive: the request
            // it sends re-stamps learned interest and fetches whatever
            // the holder has now. If that is still the old value the
            // workload's own check loop purges and re-waits, with the
            // next retry escalating again — a slow poll, but live.
            self.table.drop_stale_copy(page);
            if let Some(DsmOp::Read { view, .. }) = &mut self.procs[proc].pending_op {
                view.drive = DriveMode::Demand;
            }
        }
        self.run_queue.push_back(proc);
        true
    }

    fn push_server_work(&mut self, now: SimTime, work: ServerWork) {
        if self.server_queue.is_empty() {
            self.server_ready_since = Some(now);
        }
        self.server_queue.push_back(work);
        self.max_server_queue = self.max_server_queue.max(self.server_queue.len());
    }

    fn server_cost(&self, work: &ServerWork) -> SimDuration {
        match work {
            ServerWork::SendPacket(_) => self.calib.server_send_request,
            ServerWork::PurgeBroadcast { .. } | ServerWork::HolderRebroadcast { .. } => {
                self.calib.server_purge_broadcast
            }
            ServerWork::Packet(pkt) => match pkt.as_ref() {
                Packet::PageRequest {
                    page, want, length, ..
                } => {
                    let answers = match want {
                        Want::ReadOnly | Want::Consistent => self.table.is_consistent_holder(*page),
                        Want::Superset => {
                            !self.table.is_consistent_holder(*page)
                                && self
                                    .table
                                    .page_buf(*page)
                                    .is_some_and(mether_core::PageBuf::full_valid)
                        }
                    };
                    if answers {
                        let bytes = match want {
                            Want::Superset => mether_core::PAGE_SIZE,
                            _ => self.table.config().transfer_len(*length),
                        };
                        self.calib.reply_cost(bytes)
                    } else {
                        self.calib.server_snoop
                    }
                }
                Packet::PageData {
                    page,
                    data,
                    transfer_to,
                    ..
                } => {
                    let interested = transfer_to == &Some(mether_core::HostId(self.index as u16))
                        || self.table.page_buf(*page).is_some()
                        || self.table.tracked_pages().any(|p| p == *page);
                    if interested {
                        self.calib.install_cost(data.len())
                    } else {
                        self.calib.server_snoop
                    }
                }
                // Control frames are NIC-filtered before the server ever
                // sees them; the simulator never delivers them to hosts,
                // so this arm only keeps the cost model total.
                Packet::BridgePdu { .. } | Packet::BridgePduDelta { .. } => self.calib.server_snoop,
            },
        }
    }

    /// Picks and starts the next burst if the CPU is idle. Returns the
    /// burst completion time to schedule, if any.
    pub fn dispatch(&mut self, now: SimTime) -> Option<SimTime> {
        if self.current_burst.is_some() {
            return None;
        }
        loop {
            let next = self.choose(now)?;
            // Charge a context switch when the CPU changes hands.
            if self.last_ran != Some(next) && self.last_ran.is_some() {
                self.ctx_switches += 1;
                let d = self.calib.ctx_switch;
                self.current_burst = Some(Burst::CtxSwitch { to: next });
                return Some(now + d);
            }
            if self.current != Some(next) {
                self.current_started = now;
            }
            self.current = Some(next);
            self.last_ran = Some(next);
            match next {
                Slot::Server => {
                    let work = self.server_queue.front().expect("chose server with work");
                    let d = self.server_cost(work);
                    let work = self.server_queue.pop_front().expect("non-empty");
                    if self.server_queue.is_empty() {
                        self.server_ready_since = None;
                    } else {
                        self.server_ready_since = Some(now);
                    }
                    self.current_burst = Some(Burst::ServerItem { work, d });
                    return Some(now + d);
                }
                Slot::App(i) => {
                    match self.next_app_action(now, i) {
                        Some((burst, d)) => {
                            self.current_burst = Some(burst);
                            return Some(now + d);
                        }
                        None => {
                            // Process blocked, slept, or exited without
                            // using the CPU; pick someone else.
                            self.current = None;
                            continue;
                        }
                    }
                }
            }
        }
    }

    /// Determines the app's next CPU burst, advancing its workload state
    /// machine. Returns `None` if the process did not take the CPU
    /// (slept/done — sleep scheduling is requested via `pending_actions`).
    fn next_app_action(&mut self, now: SimTime, i: usize) -> Option<(Burst, SimDuration)> {
        // Retry a faulted operation first.
        if let Some(op) = self.procs[i].pending_op.clone() {
            let (d, sys) = self.op_cost(&op);
            return Some((
                Burst::AppOp {
                    proc: i,
                    op,
                    d,
                    sys,
                },
                d,
            ));
        }
        let p = &mut self.procs[i];
        let mut ctx = StepCtx {
            now,
            last: p.last,
            counters: &mut p.counters,
        };
        let step = p.workload.step(&mut ctx);
        p.last = OpResult::None;
        match step {
            Step::Compute(d) => Some((Burst::AppCompute { proc: i, d }, d)),
            Step::Op(op) => {
                let (d, sys) = self.op_cost(&op);
                Some((
                    Burst::AppOp {
                        proc: i,
                        op,
                        d,
                        sys,
                    },
                    d,
                ))
            }
            Step::Sleep(d) => {
                self.procs[i].state = ProcState::Sleeping;
                self.pending_sleeps.push((i, now + d));
                None
            }
            Step::Done => {
                self.procs[i].state = ProcState::Done;
                None
            }
        }
    }

    fn op_cost(&self, op: &DsmOp) -> (SimDuration, bool) {
        match op {
            DsmOp::Read {
                page, view, mode, ..
            } => {
                if self.would_hit(*page, view.length, *mode) {
                    (self.calib.mem_ref, false)
                } else {
                    (self.calib.fault_trap, true)
                }
            }
            DsmOp::Write { page, view, .. } => {
                if self.would_hit(*page, view.length, MapMode::Writeable) {
                    (self.calib.mem_ref, false)
                } else {
                    (self.calib.fault_trap, true)
                }
            }
            DsmOp::Purge { .. } | DsmOp::Lock { .. } | DsmOp::Unlock { .. } => {
                (self.calib.fault_trap, true)
            }
        }
    }

    fn would_hit(&self, page: PageId, length: PageLength, mode: MapMode) -> bool {
        let short_len = self.table.config().short_len;
        let present = self
            .table
            .page_buf(page)
            .is_some_and(|b| b.satisfies(length, short_len));
        match mode {
            MapMode::Writeable => self.table.is_consistent_holder(page) && present,
            MapMode::ReadOnly => present,
        }
    }

    /// Scheduler policy: who gets the CPU now?
    fn choose(&mut self, now: SimTime) -> Option<Slot> {
        let server_has_work = !self.server_queue.is_empty();
        let server_waited = self
            .server_ready_since
            .map(|t| now.since(t) >= self.calib.server_patience)
            .unwrap_or(false);
        // Sleeper boost: a process returning from a long sleep outranks
        // the server once. This is what lets the just-installed page be
        // used before the next incoming request ships it away again —
        // and, symmetrically, what forces the server to sit out a
        // patience period while the woken client spins (the paper's
        // "client preempting the user level server").
        if self.wake_boost && !self.run_queue.is_empty() && self.current != Some(Slot::Server) {
            self.wake_boost = false;
            if server_has_work {
                self.server_ready_since = Some(now);
            }
            if let Some(Slot::App(i)) = self.current {
                if self.procs[i].state == ProcState::Ready {
                    self.run_queue.push_back(i);
                }
            }
            self.current = None;
            return self.run_queue.pop_front().map(Slot::App);
        }
        match self.current {
            // Continuing after a burst by the same app.
            Some(Slot::App(i))
                if self.procs[i].state == ProcState::Ready
                    || self.procs[i].state == ProcState::Blocked =>
            {
                // (Blocked processes never reach here; see finish_burst.)
                self.wake_boost = false;
                if server_has_work && server_waited {
                    self.run_queue.push_back(i);
                    self.current = None;
                    return Some(Slot::Server);
                }
                if now.since(self.current_started) >= self.calib.quantum {
                    if let Some(next) = self.run_queue.pop_front() {
                        self.run_queue.push_back(i);
                        self.current = None;
                        return Some(Slot::App(next));
                    }
                }
                Some(Slot::App(i))
            }
            Some(Slot::Server) if server_has_work => {
                if self.wake_boost && !self.run_queue.is_empty() {
                    self.wake_boost = false;
                    self.server_ready_since = Some(now);
                    self.current = None;
                    return self.run_queue.pop_front().map(Slot::App);
                }
                Some(Slot::Server)
            }
            _ => {
                // CPU idle or previous occupant gone.
                self.current = None;
                if server_has_work {
                    return Some(Slot::Server);
                }
                let next = self.run_queue.pop_front().map(Slot::App);
                if next.is_some() {
                    self.wake_boost = false;
                }
                next
            }
        }
    }

    /// Completes the current burst at `now`, returning follow-up actions
    /// for the simulation (transmissions, sleeps).
    pub fn finish_burst(&mut self, now: SimTime) -> Vec<HostAction> {
        let mut actions: Vec<HostAction> = Vec::new();
        let burst = self.current_burst.take().expect("finish without burst");
        if std::env::var_os("METHER_TRACE").is_some() {
            let what = match &burst {
                Burst::AppCompute { proc, .. } => format!("app{proc} compute"),
                Burst::AppOp { proc, op, .. } => format!("app{proc} op {op:?}"),
                Burst::ServerItem { work, .. } => format!("server {work:?}"),
                Burst::CtxSwitch { to } => format!("ctxswitch -> {to:?}"),
            };
            eprintln!("[{now}] h{} END {what}", self.index);
        }
        match burst {
            Burst::CtxSwitch { to } => {
                // Now actually give `to` the CPU; dispatch() will resume it.
                self.current = Some(to);
                self.last_ran = Some(to);
                self.current_started = now;
                // Re-queue semantics: `to` was chosen; if it is an app it
                // was already popped from the run queue by choose().
            }
            Burst::AppCompute { proc, d } => {
                self.procs[proc].times.user += d;
            }
            Burst::AppOp { proc, op, d, sys } => {
                if sys {
                    self.procs[proc].times.sys += d;
                } else {
                    self.procs[proc].times.user += d;
                }
                self.exec_op(now, proc, op, &mut actions);
            }
            Burst::ServerItem { work, d } => {
                self.server_time += d;
                self.exec_server(now, work, &mut actions);
            }
        }
        actions
    }

    fn exec_op(&mut self, now: SimTime, proc: usize, op: DsmOp, actions: &mut Vec<HostAction>) {
        let waiter = proc as WaiterId;
        let mut effects = Vec::new();
        let outcome = match &op {
            DsmOp::Read {
                page,
                view,
                mode,
                offset,
            } => match self.table.access(*page, *view, *mode, waiter, &mut effects) {
                Ok(AccessOutcome::Ready) => {
                    let v = self
                        .table
                        .page_buf(*page)
                        .expect("ready implies present")
                        .read_u32(*offset as usize)
                        .expect("offset validated by VAddr");
                    Some(OpResult::Value(v))
                }
                Ok(AccessOutcome::Blocked(kind)) => {
                    self.block(now, proc, op.clone(), kind);
                    None
                }
                Err(e) => panic!("workload bug: {e}"),
            },
            DsmOp::Write {
                page,
                view,
                offset,
                value,
            } => {
                match self
                    .table
                    .access(*page, *view, MapMode::Writeable, waiter, &mut effects)
                {
                    Ok(AccessOutcome::Ready) => {
                        self.table
                            .page_buf_mut(*page)
                            .expect("ready implies present")
                            .write_u32(*offset as usize, *value)
                            .expect("offset validated");
                        Some(OpResult::Done)
                    }
                    Ok(AccessOutcome::Blocked(kind)) => {
                        self.block(now, proc, op.clone(), kind);
                        None
                    }
                    Err(e) => panic!("workload bug: {e}"),
                }
            }
            DsmOp::Purge { page, mode, length } => {
                match self.table.purge(*page, *mode, waiter, &mut effects) {
                    Ok(AccessOutcome::Ready) => Some(OpResult::Done),
                    Ok(AccessOutcome::Blocked(kind)) => {
                        // Record the broadcast length for the server.
                        self.purge_lengths.push((*page, *length));
                        self.block(now, proc, op.clone(), kind);
                        None
                    }
                    Err(e) => panic!("workload bug: {e}"),
                }
            }
            DsmOp::Lock { page, length } => match self.table.lock(*page, *length) {
                Ok(()) => Some(OpResult::LockOk),
                Err(_) => Some(OpResult::LockFailed),
            },
            DsmOp::Unlock { page } => {
                self.table.unlock(*page, &mut effects);
                Some(OpResult::Done)
            }
        };
        if let Some(res) = outcome {
            self.procs[proc].last = res;
            self.procs[proc].pending_op = None;
        }
        self.apply_effects(now, effects, actions);
    }

    fn block(&mut self, now: SimTime, proc: usize, op: DsmOp, kind: FaultKind) {
        let p = &mut self.procs[proc];
        p.state = ProcState::Blocked;
        p.pending_op = Some(op);
        p.blocked_at = now;
        p.blocked_kind = Some(kind);
        p.block_epoch += 1;
        // Request-bearing faults arm the retry timer (when enabled):
        // their reply can be lost to the network or a failed bridge, and
        // nothing else would ever wake the waiter. Data waits arm it
        // too: they transmit nothing, so the only wakeup is the fresh
        // holder's broadcast — which a bridge whose learned interest has
        // aged out under unrelated traffic filters forever.
        if matches!(
            kind,
            FaultKind::DemandFetch | FaultKind::ConsistentFetch | FaultKind::DataWait
        ) {
            if let Some(every) = self.calib.fault_retry {
                self.pending_retries
                    .push((proc, now + every, p.block_epoch));
            }
        }
        self.current = None;
    }

    /// Unblocks process `w` (if still blocked): latency accounting, run
    /// queue, and the one-shot sleeper boost.
    fn wake_one(&mut self, now: SimTime, w: WaiterId) {
        if w >= OPEN_WAITER_BASE {
            // An open-loop fault was satisfied: stamp satisfaction time
            // into the histogram. No scheduler state — open arrivals are
            // injected, not executed by a process.
            if let Some(ol) = self.open.as_mut() {
                if let Some(pos) = ol.outstanding.iter().position(|wait| wait.waiter == w) {
                    let wait = ol.outstanding.swap_remove(pos);
                    ol.hist.record(now.since(wait.issued_at).as_nanos());
                }
            }
            return;
        }
        let proc = w as usize;
        let p = &mut self.procs[proc];
        if p.state == ProcState::Blocked {
            p.state = ProcState::Ready;
            if matches!(
                p.blocked_kind,
                Some(FaultKind::DemandFetch)
                    | Some(FaultKind::DataWait)
                    | Some(FaultKind::ConsistentFetch)
            ) {
                self.fault_latencies.push(now.since(p.blocked_at));
            }
            if p.blocked_kind == Some(FaultKind::PurgeWait) {
                // The purge completed; do not re-execute it.
                p.pending_op = None;
                p.last = OpResult::Done;
            }
            p.blocked_kind = None;
            self.run_queue.push_back(proc);
            self.wake_boost = true;
        }
    }

    fn exec_server(&mut self, now: SimTime, work: ServerWork, actions: &mut Vec<HostAction>) {
        match work {
            ServerWork::SendPacket(pkt) => actions.push(HostAction::Transmit(pkt)),
            ServerWork::PurgeBroadcast { page, length } => {
                let mut effects = Vec::new();
                match self.table.server_purge_broadcast(page, length) {
                    Ok(pkt) => {
                        actions.push(HostAction::Transmit(pkt));
                        // This host is publishing as the holder: remember
                        // the page so the periodic holder re-broadcast
                        // can retransmit it if the knob is on.
                        match self.published_pages.iter_mut().find(|(p, _)| *p == page) {
                            Some(entry) => entry.1 = length,
                            None => self.published_pages.push((page, length)),
                        }
                    }
                    Err(_) => {
                        // Consistency moved away before the server got to
                        // it; nothing to broadcast.
                    }
                }
                self.table.do_purge(page, &mut effects);
                self.apply_effects(now, effects, actions);
            }
            ServerWork::HolderRebroadcast { page, length } => {
                // A pure retransmission: same generation, no state
                // change. Dropped silently when consistency moved away
                // or a purge is already pending (its broadcast — at the
                // next generation — supersedes this one).
                if let Ok(pkt) = self.table.holder_rebroadcast(page, length) {
                    actions.push(HostAction::Transmit(pkt));
                }
            }
            ServerWork::Packet(pkt) => {
                let mut effects = Vec::new();
                self.table.handle_packet(&pkt, &mut effects);
                if self.calib.piggyback_replies {
                    self.piggyback_queued(pkt.as_ref(), &effects);
                }
                self.apply_effects(now, effects, actions);
            }
        }
    }

    /// Serve-time reply piggybacking ([`Calib::piggyback_replies`]): the
    /// server just answered `served` with a broadcast `PageData` reply;
    /// any queued requests that same reply satisfies are dropped now
    /// instead of each costing a full serve leg. NIC-level coalescing
    /// cannot catch these — they arrived while `served` was already
    /// popped and being processed.
    fn piggyback_queued(&mut self, served: &Packet, effects: &[Effect]) {
        if !matches!(served, Packet::PageRequest { .. }) {
            return;
        }
        let replied = effects
            .iter()
            .any(|fx| matches!(fx, Effect::Send(Packet::PageData { .. })));
        if !replied {
            return;
        }
        let before = self.server_queue.len();
        self.server_queue.retain(|w| {
            let ServerWork::Packet(q) = w else {
                return true;
            };
            !same_request(served, q.as_ref())
        });
        let dropped = before - self.server_queue.len();
        if dropped > 0 {
            self.requests_piggybacked += dropped as u64;
            if self.server_queue.is_empty() {
                self.server_ready_since = None;
            }
        }
    }

    fn apply_effects(&mut self, now: SimTime, effects: Vec<Effect>, actions: &mut Vec<HostAction>) {
        for fx in effects {
            match fx {
                Effect::Send(pkt) => {
                    // The kernel driver built a packet; the user-level
                    // server must transmit it. When the effect arises
                    // *inside* server processing (answering a request) the
                    // cost was already charged; transmit directly.
                    if matches!(self.current, Some(Slot::Server)) {
                        actions.push(HostAction::Transmit(pkt));
                    } else {
                        self.push_server_work(now, ServerWork::SendPacket(pkt));
                    }
                }
                Effect::Wake(w) => self.wake_one(now, w),
                Effect::WakeAll(set) => {
                    // One coalesced batch per transit: every waiter the
                    // packet satisfied joins the run queue in wake order,
                    // in a single pass — the host's event-handling work
                    // for a broadcast no longer scales with the number of
                    // blocked processes.
                    for w in set {
                        self.wake_one(now, w);
                    }
                }
                Effect::ServerPurge(page) => {
                    let length = self
                        .purge_lengths
                        .iter()
                        .rev()
                        .find(|(p, _)| *p == page)
                        .map(|(_, l)| *l)
                        .unwrap_or(PageLength::Full);
                    self.purge_lengths.retain(|(p, _)| *p != page);
                    self.push_server_work(now, ServerWork::PurgeBroadcast { page, length });
                }
                Effect::ConsistentArrived(_) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mether_core::HostId;

    /// Sleeps once, then exits.
    struct SleepOnce {
        slept: bool,
        d: SimDuration,
    }

    impl Workload for SleepOnce {
        fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Step {
            if self.slept {
                Step::Done
            } else {
                self.slept = true;
                Step::Sleep(self.d)
            }
        }
    }

    fn host() -> HostSim {
        HostSim::new(0, Calib::sun3_sunos4(), MetherConfig::default())
    }

    fn coalescing_host() -> HostSim {
        HostSim::new(
            0,
            Calib::sun3_sunos4().with_request_coalescing(),
            MetherConfig::default(),
        )
    }

    fn request(from: u16, page: u32) -> Arc<Packet> {
        Arc::new(Packet::PageRequest {
            from: HostId(from),
            page: PageId::new(page),
            length: PageLength::Short,
            want: Want::ReadOnly,
        })
    }

    /// Regression: a process returning from a kernel sleep takes the
    /// one-shot sleeper boost, exactly like a fault wakeup. Without it,
    /// a host whose server queue never drains (a page's home segment
    /// under steady request load) starves the ready process forever —
    /// the idle branch of `choose` always prefers pending server work.
    /// Flushed by soak seed 24: the publisher woke from its final
    /// pacing sleep behind a saturated server and never ran again.
    #[test]
    fn sleeper_boost_preempts_saturated_server() {
        let mut h = host();
        h.add_process(Box::new(SleepOnce {
            slept: false,
            d: SimDuration::from_millis(1),
        }));
        // First dispatch: the process requests its sleep and yields.
        assert!(h.dispatch(SimTime::ZERO).is_none());
        let sleeps = h.take_sleeps();
        assert_eq!(sleeps.len(), 1);
        // Saturate the server queue with distinct foreign requests.
        let now = sleeps[0].1;
        for p in 0..8 {
            h.deliver_packet(now, request(1, p));
        }
        // The timer fires; the woken sleeper must get the CPU ahead of
        // the backlog, discover it is done, and exit.
        h.timer_fired(0);
        h.dispatch(now);
        assert!(
            h.all_done(),
            "woken sleeper starved behind the server queue"
        );
    }

    /// Identical queued page requests coalesce at the NIC (when
    /// [`Calib::coalesce_requests`] is on): the one broadcast reply
    /// satisfies every requester on the wire. Flushed by soak seed 24:
    /// five readers retrying a 13 ms-per-reply server every 20 ms
    /// backlogged its queue without bound.
    #[test]
    fn identical_requests_coalesce_in_server_queue() {
        let mut h = coalescing_host();
        h.deliver_packet(SimTime::ZERO, request(1, 7));
        h.deliver_packet(SimTime::ZERO, request(1, 7));
        h.deliver_packet(SimTime::ZERO, request(2, 7)); // other host, same ask
        h.deliver_packet(SimTime::ZERO, request(1, 8)); // different page
        assert_eq!(h.requests_coalesced, 2);
        assert_eq!(h.frames_heard, 4);
    }

    /// Consistency transfers are directed at one requester: requests
    /// from different hosts must both be served, only a same-host retry
    /// coalesces.
    #[test]
    fn consistent_requests_coalesce_per_host_only() {
        let mut h = coalescing_host();
        let consistent = |from: u16| {
            Arc::new(Packet::PageRequest {
                from: HostId(from),
                page: PageId::new(3),
                length: PageLength::Short,
                want: Want::Consistent,
            })
        };
        h.deliver_packet(SimTime::ZERO, consistent(1));
        h.deliver_packet(SimTime::ZERO, consistent(2));
        assert_eq!(h.requests_coalesced, 0);
        h.deliver_packet(SimTime::ZERO, consistent(1));
        assert_eq!(h.requests_coalesced, 1);
    }

    /// The default calibration is the paper's: every datagram reaches
    /// the server individually, duplicates included — P3's measured
    /// divergence on the counting benchmark depends on that load.
    #[test]
    fn paper_calibration_serves_every_duplicate() {
        let mut h = host();
        h.deliver_packet(SimTime::ZERO, request(1, 7));
        h.deliver_packet(SimTime::ZERO, request(1, 7));
        h.deliver_packet(SimTime::ZERO, request(2, 7));
        assert_eq!(h.requests_coalesced, 0);
        assert_eq!(h.frames_heard, 3);
    }

    /// Serve-time piggybacking: the broadcast reply for one request
    /// also satisfies identical requests that queued while it was being
    /// served, so they are dropped instead of each costing a full
    /// 13 ms+ serve leg. NIC-level coalescing cannot catch these — the
    /// served request was already popped when they arrived.
    #[test]
    fn serve_time_piggyback_drops_identical_queued_requests() {
        let mut h = HostSim::new(
            0,
            Calib::sun3_sunos4().with_reply_piggyback(),
            MetherConfig::default(),
        );
        h.table.create_owned(PageId::new(7));
        h.deliver_packet(SimTime::ZERO, request(1, 7));
        h.deliver_packet(SimTime::ZERO, request(2, 7));
        h.deliver_packet(SimTime::ZERO, request(3, 7));
        h.deliver_packet(SimTime::ZERO, request(1, 8)); // different page
        assert_eq!(h.requests_coalesced, 0, "coalescing is off");
        let t = h.dispatch(SimTime::ZERO).expect("server burst");
        let actions = h.finish_burst(t);
        assert!(
            matches!(actions[..], [HostAction::Transmit(Packet::PageData { .. })]),
            "holder answers with a broadcast reply"
        );
        assert_eq!(h.requests_piggybacked, 2);
        // Only the different-page request is left to serve.
        let t2 = h.dispatch(t).expect("one more burst");
        h.finish_burst(t2);
        assert_eq!(h.requests_piggybacked, 2);
        assert!(h.dispatch(t2).is_none(), "queue drained");
    }

    /// Paper default: no piggybacking — every queued duplicate is served
    /// individually.
    #[test]
    fn default_serves_queued_duplicates_individually() {
        let mut h = host();
        h.table.create_owned(PageId::new(7));
        h.deliver_packet(SimTime::ZERO, request(1, 7));
        h.deliver_packet(SimTime::ZERO, request(2, 7));
        let t = h.dispatch(SimTime::ZERO).expect("server burst");
        h.finish_burst(t);
        assert_eq!(h.requests_piggybacked, 0);
        assert!(h.dispatch(t).is_some(), "duplicate still queued");
    }

    /// One-access arrival stream for open-loop host tests.
    struct OneShot(Option<OpenAccess>);

    impl ArrivalStream for OneShot {
        fn next_access(&mut self) -> Option<OpenAccess> {
            self.0.take()
        }
    }

    /// An open-loop fault is stamped at issue and at satisfaction: the
    /// histogram records exactly the span from the injected access to
    /// the wake the installing reply produces.
    #[test]
    fn open_fault_latency_stamped_issue_to_satisfaction() {
        let mut h = host();
        h.attach_open_loop(Box::new(OneShot(Some(OpenAccess {
            at: SimTime::ZERO,
            page: PageId::new(3),
            view: View::short_demand(),
            mode: MapMode::ReadOnly,
            cold: false,
        }))));
        assert_eq!(h.open_next_at(), Some(SimTime::ZERO));
        assert!(!h.all_done(), "buffered arrival keeps the host busy");

        let actions = h.open_arrival(SimTime::ZERO);
        assert!(actions.is_empty(), "request goes through the server");
        assert_eq!(h.open_counts(), (1, 0, 1));
        assert!(!h.all_done(), "outstanding fault keeps the host busy");

        // The server transmits the request...
        let t = h.dispatch(SimTime::ZERO).expect("server send burst");
        let actions = h.finish_burst(t);
        let HostAction::Transmit(req) = &actions[0];

        // ...a remote holder answers it...
        let mut owner = HostSim::new(1, Calib::sun3_sunos4(), MetherConfig::default());
        owner.table.create_owned(PageId::new(3));
        let mut fx = Vec::new();
        owner.table.handle_packet(req, &mut fx);
        let reply = fx
            .into_iter()
            .find_map(|f| match f {
                Effect::Send(p @ Packet::PageData { .. }) => Some(p),
                _ => None,
            })
            .expect("holder answers");

        // ...and installing the reply wakes the open waiter, stamping
        // the issue-to-satisfaction latency.
        let later = t + SimDuration::from_millis(5);
        h.deliver_packet(later, Arc::new(reply));
        let t2 = h.dispatch(later).expect("install burst");
        h.finish_burst(t2);
        let hist = h.open_hist().expect("attached");
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.max(), t2.since(SimTime::ZERO).as_nanos());
        assert!(h.all_done(), "stream drained, nothing outstanding");
    }
}
