//! Experiment metrics: the columns of the paper's Figures 4–9.
//!
//! Every counting-protocol run produces a [`ProtocolMetrics`], whose
//! `Display` impl prints a table in the same shape as the paper's figures
//! (operation → cost), plus reproduction-specific extras (bytes per
//! addition, server queue depth).

use crate::sim::ObserverStats;
use mether_net::{BridgeStats, FabricEvent, NetStats, SimDuration};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Measured costs of one user protocol run (one paper figure).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProtocolMetrics {
    /// Protocol name, e.g. `"P1: increment on full-size page"`.
    pub label: String,
    /// Whether the workload completed within the run limits. Figure 6's
    /// protocol 3 "never finished".
    pub finished: bool,
    /// Virtual wall-clock time at completion (or at the cap).
    pub wall: SimDuration,
    /// Mean per-host user CPU time of the application processes.
    pub user: SimDuration,
    /// Mean per-host system time (application traps + the user-level
    /// server's work, which is mostly syscalls on this platform).
    pub sys: SimDuration,
    /// Network traffic counters for the whole run (all segments summed —
    /// the flat-network view existing consumers expect).
    pub net: NetStats,
    /// Per-segment traffic counters (one entry on a flat topology;
    /// `net` is their sum). Losses and decode errors stay attributable
    /// to the wire they happened on.
    pub net_segments: Vec<NetStats>,
    /// Fabric-wide bridge counters (per-device counters summed):
    /// cross-segment traffic, forwarded requests, filtered (kept-local)
    /// frames, drops and queue tail-drops. All zero on a flat topology.
    pub bridge: BridgeStats,
    /// Per-device bridge counters, indexed by device of the
    /// [`mether_core::BridgeTopology`] (`bridge` is their sum). Empty on
    /// a flat topology; one entry for PR 3's star.
    pub bridge_devices: Vec<BridgeStats>,
    /// Fabric failures/recoveries injected during the run, with the sim
    /// time (from run start) each fired at. Empty on flat topologies
    /// and undisturbed fabrics.
    pub fabric_events: Vec<(SimDuration, FabricEvent)>,
    /// Spanning-tree reconvergences: active-tree changes summed across
    /// all bridge devices (0 under static election).
    pub fabric_reconvergences: u64,
    /// The measured reconvergence stall: sim time from the most recent
    /// `BridgeDown` to the first `PageData` forwarded by a re-elected
    /// device — the window during which cross-fabric pages were
    /// unreachable. `None` when nothing was killed (or nothing crossed
    /// afterwards).
    pub reconvergence_stall: Option<SimDuration>,
    /// Mean frames snooped per host — the paper's per-host network load
    /// in frame terms; the number segment filtering shrinks.
    pub frames_heard_mean: f64,
    /// Frames snooped by the busiest host.
    pub frames_heard_max: u64,
    /// Offered network load in bytes/second (wire bytes ÷ wall).
    pub net_load_bps: f64,
    /// Wire bytes per completed addition.
    pub bytes_per_addition: f64,
    /// Total context switches across all hosts.
    pub ctx_switches: u64,
    /// Context switches per completed addition.
    pub ctx_per_addition: f64,
    /// Mean page-fault service time (block → wake).
    pub avg_latency: SimDuration,
    /// Total checks that saw an unchanged variable.
    pub losses: u64,
    /// Total checks that saw a changed variable.
    pub wins: u64,
    /// Synchronisation operations completed (the paper's 1024 additions).
    pub additions: u64,
    /// Pages of Mether address space the protocol uses.
    pub space_pages: u32,
    /// Peak server work-queue depth across hosts (degeneration marker).
    pub max_server_queue: usize,
    /// Page requests dropped at host NICs because an identical request
    /// was already queued (`Calib::with_request_coalescing`; the
    /// runtime counts the same condition in its node receive path).
    /// 0 when coalescing is off.
    pub requests_coalesced: u64,
    /// Queued page requests dropped at serve time because the reply
    /// just broadcast for an identical request satisfies them too
    /// (`Calib::with_reply_piggyback`). 0 when piggybacking is off.
    pub requests_piggybacked: u64,
    /// Open-loop accesses issued across all hosts (0 when no open-loop
    /// stream was attached).
    pub open_accesses: u64,
    /// Open-loop accesses that missed and faulted (stamped at issue;
    /// satisfied ones fill the latency histogram).
    pub open_faults: u64,
    /// Open-loop fault-latency median, from the merged histogram.
    pub open_p50: SimDuration,
    /// Open-loop fault-latency 99th percentile.
    pub open_p99: SimDuration,
    /// Open-loop fault-latency 99.9th percentile.
    pub open_p999: SimDuration,
    /// Exact maximum open-loop fault latency.
    pub open_max: SimDuration,
    /// Per-segment server-queue high-water marks: the deepest server
    /// work queue any member host saw (one entry on a flat topology) —
    /// the hot-home-segment diagnostic the open-loop lens reads.
    pub server_queue_high_water: Vec<u64>,
    /// Invariant-observer coverage for the run (sweeps run, entities
    /// checked, dirty-set high-water mark, effective stride) — what the
    /// verification layer actually looked at, instead of it being
    /// invisible. All zero when the observer is off (release builds
    /// without `METHER_OBSERVE=1`) or on the threaded runtime, which
    /// has no event-sampled observer.
    pub observer: ObserverStats,
}

impl ProtocolMetrics {
    /// losses ÷ wins (`inf` when no wins — total starvation).
    pub fn loss_win_ratio(&self) -> f64 {
        if self.wins == 0 {
            f64::INFINITY
        } else {
            self.losses as f64 / self.wins as f64
        }
    }
}

impl fmt::Display for ProtocolMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "── {} ──", self.label)?;
        if !self.finished {
            writeln!(f, "  (did not finish; cut off at the run limit)")?;
        }
        writeln!(f, "  {:<24} {}", "Wallclock Time", self.wall)?;
        writeln!(f, "  {:<24} {}", "User Time", self.user)?;
        writeln!(f, "  {:<24} {}", "Sys Time", self.sys)?;
        writeln!(
            f,
            "  {:<24} {:.1} kbytes/second ({:.0} bytes/addition)",
            "Network Load",
            self.net_load_bps / 1000.0,
            self.bytes_per_addition
        )?;
        writeln!(
            f,
            "  {:<24} {:.1} per addition",
            "Context Switches", self.ctx_per_addition
        )?;
        writeln!(f, "  {:<24} {} pages", "Space", self.space_pages)?;
        writeln!(f, "  {:<24} {}", "Average Latency", self.avg_latency)?;
        writeln!(f, "  {:<24} {:.1}", "Losses/Wins", self.loss_win_ratio())?;
        writeln!(
            f,
            "  {:<24} {} pkts ({} req / {} data), peak server queue {}",
            "Packets",
            self.net.packets,
            self.net.requests,
            self.net.data_packets,
            self.max_server_queue
        )?;
        if self.requests_coalesced > 0 {
            writeln!(
                f,
                "  {:<24} {} requests",
                "Coalesced at NIC", self.requests_coalesced
            )?;
        }
        if self.requests_piggybacked > 0 {
            writeln!(
                f,
                "  {:<24} {} requests",
                "Piggybacked at serve", self.requests_piggybacked
            )?;
        }
        if self.open_accesses > 0 {
            writeln!(
                f,
                "  {:<24} {} accesses, {} faults",
                "Open-loop traffic", self.open_accesses, self.open_faults
            )?;
            writeln!(
                f,
                "  {:<24} p50 {} / p99 {} / p999 {} / max {}",
                "Open-loop fault latency",
                self.open_p50,
                self.open_p99,
                self.open_p999,
                self.open_max
            )?;
            let hot = self
                .server_queue_high_water
                .iter()
                .enumerate()
                .max_by_key(|(_, q)| **q);
            if let Some((seg, q)) = hot {
                writeln!(f, "  {:<24} {} (segment {})", "Queue high-water", q, seg)?;
            }
        }
        writeln!(
            f,
            "  {:<24} {:.1} mean / {} max per host",
            "Frames Snooped", self.frames_heard_mean, self.frames_heard_max
        )?;
        if self.observer.sweeps > 0 || self.observer.full_sweeps > 0 {
            writeln!(
                f,
                "  {:<24} {} sweeps ({} full), {} states checked, dirty high-water {}, stride {}",
                "Observer",
                self.observer.sweeps,
                self.observer.full_sweeps,
                self.observer.entities_checked,
                self.observer.dirty_high_water,
                self.observer.effective_stride
            )?;
        }
        if self.net_segments.len() > 1 {
            for (i, s) in self.net_segments.iter().enumerate() {
                writeln!(f, "  {:<24} {}", format!("Segment {i}"), s)?;
            }
            writeln!(
                f,
                "  {:<24} {} frames / {} bytes forwarded ({} requests), {} kept local, {} dropped, {} queue drops",
                "Bridge",
                self.bridge.forwarded,
                self.bridge.bytes_forwarded,
                self.bridge.req_forwarded,
                self.bridge.filtered,
                self.bridge.dropped,
                self.bridge.queue_drops
            )?;
            if self.bridge_devices.len() > 1 {
                for (i, d) in self.bridge_devices.iter().enumerate() {
                    writeln!(
                        f,
                        "  {:<24} heard {}, forwarded {} ({} requests), filtered {}, {} queue drops",
                        format!("Bridge device {i}"),
                        d.heard,
                        d.forwarded,
                        d.req_forwarded,
                        d.filtered,
                        d.queue_drops
                    )?;
                }
            }
            if self.bridge.belief_hits + self.bridge.belief_fallback_floods > 0 {
                writeln!(
                    f,
                    "  {:<24} {} hits / {} fallback floods / {} repairs",
                    "Holder beliefs",
                    self.bridge.belief_hits,
                    self.bridge.belief_fallback_floods,
                    self.bridge.belief_repairs
                )?;
            }
            if !self.fabric_events.is_empty() {
                for (at, ev) in &self.fabric_events {
                    writeln!(f, "  {:<24} {ev:?} at {at}", "Fabric event")?;
                }
                writeln!(
                    f,
                    "  {:<24} {} reconvergences, stall {}",
                    "Fabric",
                    self.fabric_reconvergences,
                    match self.reconvergence_stall {
                        Some(s) => s.to_string(),
                        None => "unmeasured".into(),
                    }
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProtocolMetrics {
        ProtocolMetrics {
            label: "test".into(),
            finished: true,
            wall: SimDuration::from_secs(10),
            user: SimDuration::from_secs(1),
            sys: SimDuration::from_secs(2),
            net: NetStats::new(),
            net_segments: vec![NetStats::new()],
            bridge: BridgeStats::default(),
            bridge_devices: Vec::new(),
            fabric_events: Vec::new(),
            fabric_reconvergences: 0,
            reconvergence_stall: None,
            frames_heard_mean: 12.0,
            frames_heard_max: 16,
            net_load_bps: 2200.0,
            bytes_per_addition: 148.0,
            ctx_switches: 4096,
            ctx_per_addition: 4.0,
            avg_latency: SimDuration::from_millis(68),
            losses: 1340,
            wins: 10,
            additions: 1024,
            space_pages: 1,
            max_server_queue: 3,
            requests_coalesced: 0,
            requests_piggybacked: 0,
            open_accesses: 0,
            open_faults: 0,
            open_p50: SimDuration::ZERO,
            open_p99: SimDuration::ZERO,
            open_p999: SimDuration::ZERO,
            open_max: SimDuration::ZERO,
            server_queue_high_water: Vec::new(),
            observer: ObserverStats::default(),
        }
    }

    #[test]
    fn loss_win_ratio_math() {
        let mut m = sample();
        assert_eq!(m.loss_win_ratio(), 134.0);
        m.wins = 0;
        assert!(m.loss_win_ratio().is_infinite());
    }

    #[test]
    fn display_contains_paper_rows() {
        let s = sample().to_string();
        for row in [
            "Wallclock Time",
            "User Time",
            "Sys Time",
            "Network Load",
            "Context Switches",
            "Space",
            "Average Latency",
            "Losses/Wins",
        ] {
            assert!(s.contains(row), "missing row {row}:\n{s}");
        }
    }

    #[test]
    fn display_flags_unfinished_runs() {
        let mut m = sample();
        m.finished = false;
        assert!(m.to_string().contains("did not finish"));
    }
}
