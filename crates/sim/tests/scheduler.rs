//! Scheduler-behaviour tests for the simulated host: quantum rotation,
//! server patience, the sleeper boost, and CPU accounting — the
//! mechanisms behind every number in the paper's figures.

use mether_core::{MapMode, PageId, View};
use mether_net::SimDuration;
use mether_sim::{DsmOp, RunLimits, SimConfig, Simulation, Step, StepCtx, Workload};

/// Spins for `n` compute slices of `slice`, then exits.
struct Spinner {
    n: u32,
    slice: SimDuration,
}

impl Workload for Spinner {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Step {
        if self.n == 0 {
            return Step::Done;
        }
        self.n -= 1;
        Step::Compute(self.slice)
    }

    fn label(&self) -> &str {
        "spinner"
    }
}

/// Sleeps once for `d`, then exits.
struct Sleeper {
    d: SimDuration,
    slept: bool,
}

impl Workload for Sleeper {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Step {
        if self.slept {
            Step::Done
        } else {
            self.slept = true;
            Step::Sleep(self.d)
        }
    }

    fn label(&self) -> &str {
        "sleeper"
    }
}

/// Reads one remote page once (demand, read-only), then exits.
struct OneRead {
    page: PageId,
    done: bool,
}

impl Workload for OneRead {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        if self.done {
            assert!(matches!(ctx.last, mether_sim::OpResult::Value(_)));
            return Step::Done;
        }
        self.done = true;
        Step::Op(DsmOp::Read {
            page: self.page,
            view: View::short_demand(),
            mode: MapMode::ReadOnly,
            offset: 0,
        })
    }

    fn label(&self) -> &str {
        "one-read"
    }
}

#[test]
fn single_spinner_accumulates_pure_user_time() {
    let mut sim = Simulation::new(SimConfig::paper(1));
    sim.add_process(
        0,
        Box::new(Spinner {
            n: 1000,
            slice: SimDuration::from_micros(50),
        }),
    );
    let out = sim.run(RunLimits::default());
    assert!(out.finished);
    assert_eq!(out.wall, SimDuration::from_micros(50_000));
    let t = sim.host(0).times(0);
    assert_eq!(t.user, SimDuration::from_micros(50_000));
    assert_eq!(t.sys, SimDuration::ZERO);
    assert_eq!(sim.host(0).ctx_switches, 0, "no one to switch to");
}

#[test]
fn two_spinners_share_the_cpu_via_quantum() {
    let mut sim = Simulation::new(SimConfig::paper(1));
    // Each needs 1 s of CPU; the quantum is 72 ms, so expect ~2 s of
    // combined wall plus ~28 rotations of context switching.
    sim.add_process(
        0,
        Box::new(Spinner {
            n: 20_000,
            slice: SimDuration::from_micros(50),
        }),
    );
    sim.add_process(
        0,
        Box::new(Spinner {
            n: 20_000,
            slice: SimDuration::from_micros(50),
        }),
    );
    let out = sim.run(RunLimits::default());
    assert!(out.finished);
    let wall = out.wall.as_secs_f64();
    assert!((2.0..2.3).contains(&wall), "{wall}");
    let switches = sim.host(0).ctx_switches;
    assert!((20..40).contains(&switches), "{switches} switches");
    // Fair split.
    let a = sim.host(0).times(0).user;
    let b = sim.host(0).times(1).user;
    assert_eq!(a, b);
}

#[test]
fn sleeping_frees_the_cpu() {
    let mut sim = Simulation::new(SimConfig::paper(1));
    sim.add_process(
        0,
        Box::new(Sleeper {
            d: SimDuration::from_secs(1),
            slept: false,
        }),
    );
    sim.add_process(
        0,
        Box::new(Spinner {
            n: 1000,
            slice: SimDuration::from_micros(50),
        }),
    );
    let out = sim.run(RunLimits::default());
    assert!(out.finished);
    // The spinner's 50 ms happen during the sleeper's 1 s, not after
    // (plus one context switch when the sleeper wakes).
    let wall = out.wall.as_secs_f64();
    assert!((1.0..1.01).contains(&wall), "{wall}");
}

#[test]
fn remote_fault_round_trip_latency_is_tens_of_ms() {
    // One reader on host 1 faults a page owned by an otherwise idle
    // host 0. Cost: trap + ctx + send + wire + handle + reply-copy +
    // wire + install + ctx. With an idle holder (no patience penalty)
    // this is ~35-55 ms on the Sun-3 calibration.
    let mut sim = Simulation::new(SimConfig::paper(2));
    sim.create_owned(0, PageId::new(0));
    sim.add_process(
        1,
        Box::new(OneRead {
            page: PageId::new(0),
            done: false,
        }),
    );
    let out = sim.run(RunLimits::default());
    assert!(out.finished);
    let lat = &sim.host(1).fault_latencies;
    assert_eq!(lat.len(), 1);
    let ms = lat[0].as_millis_f64();
    assert!((20.0..70.0).contains(&ms), "{ms} ms");
    // Exactly one request and one reply crossed the wire.
    assert_eq!(sim.net_stats().requests, 1);
    assert_eq!(sim.net_stats().data_packets, 1);
}

#[test]
fn server_patience_delays_service_under_a_spinning_client() {
    // Same fault, but the holder's CPU is busy with a spinner: the
    // request waits out the 22 ms patience before the server runs.
    let mut idle = Simulation::new(SimConfig::paper(2));
    idle.create_owned(0, PageId::new(0));
    idle.add_process(
        1,
        Box::new(OneRead {
            page: PageId::new(0),
            done: false,
        }),
    );
    idle.run(RunLimits::default());
    let idle_lat = idle.host(1).fault_latencies[0];

    let mut busy = Simulation::new(SimConfig::paper(2));
    busy.create_owned(0, PageId::new(0));
    busy.add_process(
        0,
        Box::new(Spinner {
            n: 1_000_000,
            slice: SimDuration::from_micros(50),
        }),
    );
    busy.add_process(
        1,
        Box::new(OneRead {
            page: PageId::new(0),
            done: false,
        }),
    );
    let out = busy.run(RunLimits {
        max_sim_time: SimDuration::from_secs(90),
        max_events: 100_000_000,
    });
    assert!(out.finished);
    let busy_lat = busy.host(1).fault_latencies[0];

    let delta = busy_lat.as_millis_f64() - idle_lat.as_millis_f64();
    assert!(
        (10.0..40.0).contains(&delta),
        "patience should add roughly 22 ms: idle {idle_lat}, busy {busy_lat}"
    );
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut sim = Simulation::new(SimConfig::paper(2));
        sim.create_owned(0, PageId::new(0));
        sim.add_process(
            0,
            Box::new(Spinner {
                n: 5000,
                slice: SimDuration::from_micros(50),
            }),
        );
        sim.add_process(
            1,
            Box::new(OneRead {
                page: PageId::new(0),
                done: false,
            }),
        );
        let out = sim.run(RunLimits::default());
        (out.wall, out.events, sim.net_stats())
    };
    assert_eq!(run(), run(), "the DES must be bit-for-bit deterministic");
}

#[test]
fn run_limits_cap_infinite_workloads() {
    let mut sim = Simulation::new(SimConfig::paper(1));
    sim.add_process(
        0,
        Box::new(Spinner {
            n: u32::MAX,
            slice: SimDuration::from_micros(50),
        }),
    );
    let out = sim.run(RunLimits {
        max_sim_time: SimDuration::from_millis(100),
        max_events: 1_000_000,
    });
    assert!(!out.finished);
    assert!(out.wall >= SimDuration::from_millis(100));
}
