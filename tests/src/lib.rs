//! Integration-test-only crate.
//!
//! The actual tests live in `tests/tests/*.rs` and span every crate of
//! the workspace:
//!
//! * `protocol_orderings` — the paper's qualitative findings end to end
//!   on the discrete-event simulator;
//! * `memnet_equivalence` — the §6 "same best protocol" claim across
//!   the software and hardware DSMs;
//! * `runtime_lossy` — failure injection: channels over a lossy LAN;
//! * `sim_runtime_agreement` — the simulator and the threaded runtime
//!   agree on protocol-level facts;
//! * `invariants` — property-based soup testing of the single-
//!   consistent-holder invariant;
//! * `event_engine_regression` — per-transit delivery and 1-segment
//!   bridged topologies pinned byte-identical to their predecessors at
//!   fixed seeds;
//! * `segmented_topology` — the multi-segment scaling claim (≥3× fewer
//!   frames snooped per host on 4×8 segments vs 1×32 flat), bridge
//!   fault knobs, and the `HostMask`/`Recipients::Subset` properties;
//! * `wire_roundtrip` / `zero_copy_fanout` — codec framing equivalence
//!   and the zero-copy page-data path.
