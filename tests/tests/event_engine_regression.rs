//! Deterministic-seed regression tests pinning the per-transit event
//! engine to the per-host schedule it replaced.
//!
//! The overhaul collapsed the N−1 per-host arrival events of a broadcast
//! into one `Deliver` event that fans out at pop time
//! ([`DeliveryMode::PerTransit`]). The old schedule survives as
//! [`DeliveryMode::PerHostCompat`] precisely so these tests can assert
//! the strongest possible property: for the paper's workloads, at fixed
//! seeds (including lossy-network seeds), the two schedules produce
//! **identical final page states and identical metrics** — same page
//! bytes, generations and holders on every host, same virtual wall
//! clock, CPU split, context switches, fault latencies, and traffic
//! counters. Any divergence in same-tick delivery order, wake order, or
//! loss-injection alignment would show up here as a fingerprint
//! mismatch.
//!
//! The heap-shrink acceptance criterion rides along: on a 16-host
//! broadcast-heavy run, per-transit delivery must push at least 4× fewer
//! delivery events than the per-host schedule (it pushes hosts−1×
//! fewer).

use mether_core::PageId;
use mether_net::SimDuration;
use mether_sim::{DeliveryMode, ProtocolMetrics, RunLimits, SimConfig, Simulation, Topology};
use mether_workloads::{
    build_counting, build_publisher_sim, CountingConfig, Protocol, SolverConfig, SolverWorker,
};

const SEEDS: [u64; 3] = [1, 7, 42];

/// FNV-1a over a byte slice — cheap, deterministic content digest.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Everything observable about a finished simulation, flattened to a
/// comparable string: per-host page-table state first, then the full
/// metrics row (floats compared bit-exactly via `to_bits`, which also
/// makes NaN-valued per-addition ratios comparable).
fn fingerprint(sim: &Simulation, hosts: usize, m: &ProtocolMetrics) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for h in 0..hosts {
        let host = sim.host(h);
        writeln!(
            out,
            "host{h}: ctx={} server_ns={} latencies={} heard={} max_q={}",
            host.ctx_switches,
            host.server_time.as_nanos(),
            host.fault_latencies.len(),
            host.frames_heard,
            host.max_server_queue,
        )
        .unwrap();
        writeln!(out, "  table_stats={:?}", host.table.stats()).unwrap();
        for page in host.table.tracked_pages() {
            let buf = host.table.page_buf(page);
            writeln!(
                out,
                "  page{}: gen={:?} holder={} locked={} purge_pending={} valid={:?} digest={:016x}",
                page.index(),
                host.table.generation(page),
                host.table.is_consistent_holder(page),
                host.table.is_locked(page),
                host.table.purge_pending(page),
                buf.map(|b| b.valid_len()),
                buf.map_or(0, |b| fnv(b.as_slice())),
            )
            .unwrap();
        }
    }
    writeln!(
        out,
        "metrics: finished={} wall={} user={} sys={} net={:?} load={:016x} bpa={:016x} ctx={} cpa={:016x} lat={} losses={} wins={} additions={} space={} max_q={}",
        m.finished,
        m.wall.as_nanos(),
        m.user.as_nanos(),
        m.sys.as_nanos(),
        m.net,
        m.net_load_bps.to_bits(),
        m.bytes_per_addition.to_bits(),
        m.ctx_switches,
        m.ctx_per_addition.to_bits(),
        m.avg_latency.as_nanos(),
        m.losses,
        m.wins,
        m.additions,
        m.space_pages,
        m.max_server_queue,
    )
    .unwrap();
    out
}

/// Runs `protocol` at `seed` (lossy 10 Mbit Ethernet) under `mode` and
/// `topology`, and returns the full fingerprint.
fn counting_fingerprint_on(
    protocol: Protocol,
    seed: u64,
    mode: DeliveryMode,
    topology: Topology,
) -> String {
    let cfg = CountingConfig {
        target: 192,
        processes: 2,
        spin: SimDuration::from_micros(48),
    };
    let mut sim_cfg = SimConfig::paper(2);
    sim_cfg.ether = sim_cfg.ether.with_loss(0.02, seed);
    sim_cfg.topology = topology;
    let mut sim = build_counting(protocol, &cfg, sim_cfg);
    sim.set_delivery_mode(mode);
    let limits = RunLimits {
        max_sim_time: SimDuration::from_secs(120),
        ..RunLimits::default()
    };
    let outcome = sim.run(limits);
    let m = sim.metrics(&protocol.label(), outcome.finished, protocol.space_pages());
    fingerprint(&sim, 2, &m)
}

fn counting_fingerprint(protocol: Protocol, seed: u64, mode: DeliveryMode) -> String {
    counting_fingerprint_on(protocol, seed, mode, Topology::Flat)
}

/// Runs the distributed solver at `seed` under `mode` and `topology`.
fn solver_fingerprint_on(seed: u64, mode: DeliveryMode, topology: Topology) -> String {
    const WORKERS: usize = 3;
    let cfg = SolverConfig {
        iterations: 6,
        work_per_iteration: SimDuration::from_millis(20),
    };
    let mut sim_cfg = SimConfig::paper(WORKERS);
    sim_cfg.ether = sim_cfg.ether.with_loss(0.01, seed);
    sim_cfg.topology = topology;
    let mut sim = Simulation::new(sim_cfg);
    sim.set_delivery_mode(mode);
    for rank in 0..WORKERS {
        sim.create_owned(rank, PageId::new(rank as u32));
        sim.add_process(rank, Box::new(SolverWorker::new(cfg, rank, WORKERS)));
    }
    let outcome = sim.run(RunLimits::default());
    let m = sim.metrics("solver", outcome.finished, WORKERS as u32);
    fingerprint(&sim, WORKERS, &m)
}

fn solver_fingerprint(seed: u64, mode: DeliveryMode) -> String {
    solver_fingerprint_on(seed, mode, Topology::Flat)
}

#[test]
fn counting_workloads_identical_across_delivery_modes_at_fixed_seeds() {
    // P1 ping-pongs the consistent copy (request/transfer broadcasts);
    // P5 is the paper's final protocol (purge broadcasts + data-driven
    // waits) — together they cover every packet kind and wake path.
    for protocol in [Protocol::P1, Protocol::P5] {
        for seed in SEEDS {
            let compat = counting_fingerprint(protocol, seed, DeliveryMode::PerHostCompat);
            let transit = counting_fingerprint(protocol, seed, DeliveryMode::PerTransit);
            assert_eq!(
                compat, transit,
                "{protocol:?} seed {seed}: per-transit delivery diverged from the per-host schedule"
            );
        }
    }
}

#[test]
fn counting_runs_are_reproducible_at_a_fixed_seed() {
    // Belt and braces for the comparison above: the same mode twice at
    // the same seed is bit-identical (no hidden nondeterminism that the
    // cross-mode assertion could be accidentally insensitive to).
    let a = counting_fingerprint(Protocol::P5, SEEDS[0], DeliveryMode::PerTransit);
    let b = counting_fingerprint(Protocol::P5, SEEDS[0], DeliveryMode::PerTransit);
    assert_eq!(a, b);
}

#[test]
fn solver_workload_identical_across_delivery_modes_at_fixed_seeds() {
    for seed in SEEDS {
        let compat = solver_fingerprint(seed, DeliveryMode::PerHostCompat);
        let transit = solver_fingerprint(seed, DeliveryMode::PerTransit);
        assert_eq!(
            compat, transit,
            "solver seed {seed}: per-transit delivery diverged from the per-host schedule"
        );
    }
}

// ---------------------------------------------------------------------
// Topology equivalence: a 1-segment *bridged* deployment runs the
// masked `Recipients::Subset` delivery path with a live (never-
// forwarding) bridge, where the flat deployment runs `AllExcept` with
// no bridge at all. For any workload and seed the two must produce
// byte-identical page states and metrics — the masked path is the flat
// path, just spelled as a bitmask.
// ---------------------------------------------------------------------

#[test]
fn one_segment_bridged_topology_identical_to_flat_counting_at_fixed_seeds() {
    for protocol in [Protocol::P1, Protocol::P5] {
        for seed in SEEDS {
            let flat =
                counting_fingerprint_on(protocol, seed, DeliveryMode::PerTransit, Topology::Flat);
            let bridged = counting_fingerprint_on(
                protocol,
                seed,
                DeliveryMode::PerTransit,
                Topology::segmented(1),
            );
            assert_eq!(
                flat, bridged,
                "{protocol:?} seed {seed}: 1-segment bridged topology diverged from flat"
            );
        }
    }
}

#[test]
fn one_segment_bridged_topology_identical_to_flat_solver_at_fixed_seeds() {
    for seed in SEEDS {
        let flat = solver_fingerprint_on(seed, DeliveryMode::PerTransit, Topology::Flat);
        let bridged = solver_fingerprint_on(seed, DeliveryMode::PerTransit, Topology::segmented(1));
        assert_eq!(
            flat, bridged,
            "solver seed {seed}: 1-segment bridged topology diverged from flat"
        );
    }
}

// ---------------------------------------------------------------------
// Heap-shrink acceptance: one writer broadcasting to 15 snooping hosts.
// The workload is `mether_workloads::Publisher` — shared with the
// `event_queue/broadcast_heap_16` microbench so the baseline numbers
// measure exactly what this test pins.
// ---------------------------------------------------------------------

fn broadcast_heavy_run(mode: DeliveryMode) -> (Simulation, ProtocolMetrics) {
    let mut sim = build_publisher_sim(16, 64);
    sim.set_delivery_mode(mode);
    let outcome = sim.run(RunLimits::default());
    assert!(outcome.finished, "publisher must complete its 64 cycles");
    let m = sim.metrics("broadcast-heavy", outcome.finished, 1);
    (sim, m)
}

#[test]
fn per_transit_delivery_shrinks_heap_pushes_at_least_4x_on_16_hosts() {
    let (compat_sim, compat_m) = broadcast_heavy_run(DeliveryMode::PerHostCompat);
    let (transit_sim, transit_m) = broadcast_heavy_run(DeliveryMode::PerTransit);
    let compat = compat_sim.event_stats();
    let transit = transit_sim.event_stats();

    // Same traffic on the wire...
    assert_eq!(compat.transits, transit.transits);
    assert!(compat.transits >= 64, "every purge cycle broadcast");
    // ...but the per-transit heap carries one delivery event per
    // broadcast instead of hosts−1.
    assert_eq!(compat.delivery_pushes, compat.transits * 15);
    assert_eq!(transit.delivery_pushes, transit.transits);
    let ratio = compat.delivery_pushes as f64 / transit.delivery_pushes as f64;
    assert!(
        ratio >= 4.0,
        "delivery pushes per broadcast must shrink ≥4× (got {ratio:.1}×)"
    );
    assert!(
        transit.heap_pushes < compat.heap_pushes,
        "total heap traffic shrinks too ({} vs {})",
        transit.heap_pushes,
        compat.heap_pushes
    );
    assert!(
        transit.max_heap_depth <= compat.max_heap_depth,
        "peak heap depth never grows"
    );

    // And the outcome is still byte-identical.
    assert_eq!(
        fingerprint(&compat_sim, 16, &compat_m),
        fingerprint(&transit_sim, 16, &transit_m)
    );
}
