//! Failure injection: the channel layer over a lossy LAN.
//!
//! The paper's motivation for abandoning global consistency was "the
//! comparatively low reliability of the network we are using". The raw
//! Mether protocols have no acknowledgements; the library layer's
//! wait loops (demand-poll fallback) are what make `csend`/`crecv`
//! usable over drops. These tests inject uniform frame loss and assert
//! the channel still delivers every message, in order.

use mether_core::{MapMode, PageId, VAddr, View};
use mether_lib::channel_pair;
use mether_net::rt::LanConfig;
use mether_runtime::{Cluster, ClusterConfig};
use std::sync::Arc;
use std::time::Duration;

fn lossy_cluster(loss: f64, seed: u64) -> Arc<Cluster> {
    let cfg = ClusterConfig {
        lan: LanConfig::fast().with_loss(loss, seed),
        ..ClusterConfig::fast(2)
    };
    Arc::new(Cluster::new(cfg).unwrap())
}

#[test]
fn channel_survives_10_percent_loss() {
    let c = lossy_cluster(0.10, 42);
    let (a, b) = channel_pair(c.node(0), c.node(1), PageId::new(0), PageId::new(1)).unwrap();
    let a = a.with_timeout(Duration::from_secs(30));
    let b = b.with_timeout(Duration::from_secs(30));

    let c2 = Arc::clone(&c);
    let receiver = std::thread::spawn(move || {
        (0..40u32)
            .map(|_| {
                let v = b.crecv_vec(c2.node(1)).unwrap();
                u32::from_le_bytes(v.try_into().unwrap())
            })
            .collect::<Vec<u32>>()
    });
    for i in 0..40u32 {
        a.csend(c.node(0), &i.to_le_bytes()).unwrap();
    }
    assert_eq!(receiver.join().unwrap(), (0..40).collect::<Vec<u32>>());
    let stats = c.net_stats();
    assert!(
        stats.lost > 0,
        "the loss injection must actually have dropped frames"
    );
}

#[test]
fn channel_survives_30_percent_loss() {
    let c = lossy_cluster(0.30, 7);
    let (a, b) = channel_pair(c.node(0), c.node(1), PageId::new(0), PageId::new(1)).unwrap();
    let a = a.with_timeout(Duration::from_secs(60));
    let b = b.with_timeout(Duration::from_secs(60));

    let c2 = Arc::clone(&c);
    let receiver = std::thread::spawn(move || b.crecv_vec(c2.node(1)).unwrap());
    a.csend(c.node(0), b"survives heavy loss").unwrap();
    assert_eq!(receiver.join().unwrap(), b"survives heavy loss");
}

#[test]
fn demand_read_retries_via_library_poll() {
    // A bare demand fault whose request frame is dropped would block
    // forever in the raw protocol; verify the *library* path (SyncCell)
    // recovers where the raw runtime read would not.
    let c = lossy_cluster(0.25, 99);
    let cell = mether_lib::SyncCell::new(PageId::new(4), 0);
    cell.create_on(c.node(0));
    cell.publish(c.node(0), 5).unwrap();
    // get() is a single demand fetch: retry at the test level to tolerate
    // a dropped request or reply, as the paper's applications did.
    let mut got = None;
    for _ in 0..20 {
        match cell.get(c.node(1), Duration::from_millis(200)) {
            Ok(v) => {
                got = Some(v);
                break;
            }
            Err(mether_core::Error::Timeout) => continue,
            Err(e) => panic!("{e}"),
        }
    }
    assert_eq!(
        got,
        Some(5),
        "demand fetch should succeed within 20 poll attempts"
    );
}

#[test]
fn loss_free_control_moves_no_retries() {
    // Control: with loss 0 the same exchange completes with the minimal
    // packet count (sanity check on the loss tests above).
    let c = lossy_cluster(0.0, 0);
    let page = PageId::new(0);
    c.node(0).create_owned(page);
    let addr = VAddr::new(page, View::short_demand(), 0).unwrap();
    c.node(0).write_u32(addr, 1).unwrap();
    let v = c.node(1).read_u32(addr, MapMode::ReadOnly).unwrap();
    assert_eq!(v, 1);
    assert_eq!(c.net_stats().lost, 0);
    assert_eq!(c.net_stats().requests, 1);
    assert_eq!(c.net_stats().data_packets, 1);
}
