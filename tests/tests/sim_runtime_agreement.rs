//! The simulator and the threaded runtime drive the *same* protocol
//! state machine (`mether_core::PageTable`). These tests run the same
//! scenarios on both and assert they agree on protocol-level facts
//! (packet counts and kinds), which is what makes the simulator's paper
//! tables credible.

use mether_core::{MapMode, PageId, PageLength, VAddr, View};
use mether_net::SimDuration;
use mether_runtime::{Cluster, ClusterConfig};
use mether_sim::{RunLimits, SimConfig};
use mether_workloads::{run_counting, CountingConfig, Protocol};
use std::sync::Arc;
use std::time::Duration;

/// Counting to N over the final protocol on the threaded runtime;
/// returns (packets, requests, data_packets).
fn runtime_final_protocol(target: u32) -> (u64, u64, u64) {
    let c = Arc::new(Cluster::new(ClusterConfig::fast(2)).unwrap());
    let pages = [PageId::new(0), PageId::new(1)];
    c.node(0).create_owned(pages[0]);
    c.node(1).create_owned(pages[1]);

    let mut handles = Vec::new();
    for me in 0..2usize {
        let c = Arc::clone(&c);
        handles.push(std::thread::spawn(move || {
            let my_page = pages[me];
            let other_page = pages[1 - me];
            let my_addr = VAddr::new(my_page, View::short_demand(), 0).unwrap();
            let other_demand = VAddr::new(other_page, View::short_demand(), 0).unwrap();
            let other_data = VAddr::new(other_page, View::short_data(), 0).unwrap();
            let mut last = 0u32;
            loop {
                if last >= target {
                    return;
                }
                if last % 2 == me as u32 {
                    c.node(me).write_u32(my_addr, last + 1).unwrap();
                    c.node(me)
                        .purge(my_page, MapMode::Writeable, PageLength::Short)
                        .unwrap();
                    last += 1;
                    continue;
                }
                let v = c
                    .node(me)
                    .read_u32_timeout(other_demand, MapMode::ReadOnly, Duration::from_secs(10))
                    .unwrap();
                if v > last {
                    last = v;
                    continue;
                }
                c.node(me)
                    .purge(other_page, MapMode::ReadOnly, PageLength::Short)
                    .unwrap();
                if let Ok(v) = c.node(me).read_u32_timeout(
                    other_data,
                    MapMode::ReadOnly,
                    Duration::from_millis(500),
                ) {
                    if v > last {
                        last = v;
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let s = c.net_stats();
    (s.packets, s.requests, s.data_packets)
}

#[test]
fn final_protocol_packet_economy_matches_across_substrates() {
    let target = 64;

    // Simulator.
    let cfg = CountingConfig {
        target,
        processes: 2,
        spin: SimDuration::from_micros(48),
    };
    let sim = run_counting(
        Protocol::P5,
        &cfg,
        SimConfig::paper(2),
        RunLimits::default(),
    );
    assert!(sim.finished);

    // Threaded runtime.
    let (rt_packets, rt_requests, rt_data) = runtime_final_protocol(target);

    // Both substrates: essentially one data packet per addition, almost
    // no requests. Thread scheduling adds a little jitter; allow 30%.
    let sim_per_add = sim.net.data_packets as f64 / f64::from(target);
    let rt_per_add = rt_data as f64 / f64::from(target);
    assert!(
        (0.9..1.3).contains(&sim_per_add),
        "sim: {sim_per_add} data pkts/add"
    );
    assert!(
        (0.9..1.6).contains(&rt_per_add),
        "runtime: {rt_per_add} data pkts/add"
    );
    assert!(sim.net.requests <= 4, "sim requests: {}", sim.net.requests);
    assert!(rt_requests <= 8, "runtime requests: {rt_requests}");
    assert!(
        rt_packets >= u64::from(target),
        "runtime total: {rt_packets}"
    );
}

#[test]
fn consistency_moves_identically_on_both_substrates() {
    // A remote write moves the consistent copy; a read-only fetch does
    // not — asserted on the runtime here, mirrored by unit tests on the
    // table driving the simulator.
    let c = Cluster::new(ClusterConfig::fast(2)).unwrap();
    let page = PageId::new(0);
    c.node(0).create_owned(page);
    let addr = VAddr::new(page, View::short_demand(), 0).unwrap();

    c.node(0).write_u32(addr, 1).unwrap();
    let _ = c.node(1).read_u32(addr, MapMode::ReadOnly).unwrap();
    assert!(c.node(0).is_consistent_holder(page));
    assert!(!c.node(1).is_consistent_holder(page));

    c.node(1).write_u32(addr, 2).unwrap();
    assert!(!c.node(0).is_consistent_holder(page));
    assert!(c.node(1).is_consistent_holder(page));
}

#[test]
fn short_transfer_leaves_superset_wanted_on_runtime() {
    // Figure 1 pagein rule observed end to end on the threaded runtime:
    // after a short consistency transfer the new holder faults on the
    // full view and the superset is supplied by the old holder.
    let c = Cluster::new(ClusterConfig::fast(2)).unwrap();
    let page = PageId::new(0);
    c.node(0).create_owned(page);
    let tail = VAddr::new(page, View::full_demand(), 4096).unwrap();
    c.node(0).write_u32(tail, 77).unwrap();

    // Short write from node 1 moves consistency with a 32-byte transfer.
    let head = VAddr::new(page, View::short_demand(), 0).unwrap();
    c.node(1).write_u32(head, 5).unwrap();
    assert!(c.node(1).is_consistent_holder(page));

    // Reading the tail through the full view faults the superset in from
    // node 0's retained full copy; node 1's fresh prefix survives.
    let got_tail = c.node(1).read_u32(tail, MapMode::Writeable).unwrap();
    assert_eq!(got_tail, 77, "superset supplied by the old holder");
    let got_head = c.node(1).read_u32(head, MapMode::Writeable).unwrap();
    assert_eq!(got_head, 5, "consistent prefix preserved through the merge");
}
