//! Zero-copy broadcast fan-out: one decoded datagram serves every
//! snooping host without per-host payload copies, and copy-on-write keeps
//! published payloads immutable.
//!
//! These tests pin the acceptance criteria of the zero-copy page-data
//! path: (1) a full-page broadcast delivered to N snooping hosts performs
//! zero full-page copies per host in steady state — every host's page
//! buffer shares the decoded datagram's storage; (2) a snooped refresh or
//! a local write never mutates bytes already handed to the network.

use bytes::Bytes;
use mether_core::{
    Generation, HostId, MapMode, MetherConfig, Packet, PageBuf, PageId, PageLength, PageTable, View,
};

const SNOOPERS: u16 = 16;

fn full_page_broadcast(generation: u64, fill: u8) -> Packet {
    Packet::PageData {
        from: HostId(0),
        page: PageId::new(0),
        length: PageLength::Full,
        generation: Generation(generation),
        transfer_to: None,
        data: Bytes::from(vec![fill; 8192]),
    }
}

/// Builds N snooping tables that have page 0 mapped (data-driven view),
/// so broadcasts install and refresh.
fn snoopers() -> Vec<PageTable> {
    (1..=SNOOPERS)
        .map(|i| {
            let mut t = PageTable::new(HostId(i), MetherConfig::new());
            let mut fx = Vec::new();
            let _ = t.access(
                PageId::new(0),
                View::short_data(),
                MapMode::ReadOnly,
                1,
                &mut fx,
            );
            t
        })
        .collect()
}

#[test]
fn one_decode_serves_sixteen_snoopers_without_copies() {
    let frame = full_page_broadcast(1, 0xab).encode();
    let decoded = Packet::decode(&frame).unwrap();
    let payload = match &decoded {
        Packet::PageData { data, .. } => data.clone(),
        other => panic!("{other:?}"),
    };
    assert!(payload.shares_storage_with(&frame), "decode is zero-copy");

    let mut tables = snoopers();
    for t in tables.iter_mut() {
        let mut fx = Vec::new();
        t.handle_packet(&decoded, &mut fx);
    }
    for t in &tables {
        let buf = t.page_buf(PageId::new(0)).expect("installed by snoop");
        assert!(buf.full_valid());
        assert_eq!(
            buf.as_slice(),
            &payload[..],
            "identical bytes on every host"
        );
        assert!(
            buf.shares_storage_with(&payload),
            "install adopted the datagram: zero full-page copies per host"
        );
    }
}

#[test]
fn steady_state_refresh_stays_zero_copy() {
    let mut tables = snoopers();
    // Install generation 1 everywhere, then refresh with generation 2.
    let first = Packet::decode(&full_page_broadcast(1, 0x11).encode()).unwrap();
    let second_frame = full_page_broadcast(2, 0x22).encode();
    let second = Packet::decode(&second_frame).unwrap();
    let second_payload = match &second {
        Packet::PageData { data, .. } => data.clone(),
        other => panic!("{other:?}"),
    };
    for t in tables.iter_mut() {
        let mut fx = Vec::new();
        t.handle_packet(&first, &mut fx);
        t.handle_packet(&second, &mut fx);
    }
    for t in &tables {
        let buf = t.page_buf(PageId::new(0)).unwrap();
        assert_eq!(buf.read_u32(0).unwrap(), 0x2222_2222);
        assert!(
            buf.shares_storage_with(&second_payload),
            "a full refresh adopts the new datagram instead of copying it"
        );
    }
}

#[test]
fn snooped_refresh_never_mutates_published_payload() {
    // A holder publishes a full page; a *snooping host* that shares that
    // payload then takes later broadcasts. The bytes the holder handed to
    // the network must remain exactly as published.
    let mut holder = PageTable::new(HostId(0), MetherConfig::new());
    holder.create_owned(PageId::new(0));
    holder
        .page_buf_mut(PageId::new(0))
        .unwrap()
        .write_u32(0, 0xfeed_f00d)
        .unwrap();

    // The holder answers a read-only full-view request — this publishes a
    // zero-copy payload of its page.
    let mut fx = Vec::new();
    holder.handle_packet(
        &Packet::PageRequest {
            from: HostId(1),
            page: PageId::new(0),
            length: PageLength::Full,
            want: mether_core::Want::ReadOnly,
        },
        &mut fx,
    );
    let published = match fx.remove(0) {
        mether_core::Effect::Send(Packet::PageData { data, .. }) => data,
        other => panic!("{other:?}"),
    };
    assert_eq!(&published[..4], &0xfeed_f00du32.to_le_bytes());

    // A snooper installs the published payload (sharing its storage),
    // then gets refreshed by a *newer* short broadcast from elsewhere.
    let mut snooper = snoopers().remove(0);
    let mut fx2 = Vec::new();
    snooper.handle_packet(
        &Packet::PageData {
            from: HostId(0),
            page: PageId::new(0),
            length: PageLength::Full,
            generation: Generation(1),
            transfer_to: None,
            data: published.clone(),
        },
        &mut fx2,
    );
    assert!(snooper
        .page_buf(PageId::new(0))
        .unwrap()
        .shares_storage_with(&published));
    snooper.handle_packet(
        &Packet::PageData {
            from: HostId(2),
            page: PageId::new(0),
            length: PageLength::Short,
            generation: Generation(2),
            transfer_to: None,
            data: Bytes::from(vec![0u8; 32]),
        },
        &mut fx2,
    );
    assert_eq!(
        snooper
            .page_buf(PageId::new(0))
            .unwrap()
            .read_u32(0)
            .unwrap(),
        0,
        "snooper merged the newer short prefix"
    );
    assert_eq!(
        &published[..4],
        &0xfeed_f00du32.to_le_bytes(),
        "the payload the holder published is immutable"
    );

    // And the holder writing again must not alter it either (COW).
    holder
        .page_buf_mut(PageId::new(0))
        .unwrap()
        .write_u32(0, 7)
        .unwrap();
    assert_eq!(&published[..4], &0xfeed_f00du32.to_le_bytes());
}

#[test]
fn writes_on_adopted_storage_do_not_leak_between_hosts() {
    // Two hosts adopt the same datagram, then one becomes the consistent
    // holder and writes. The other host's copy must be unaffected.
    let frame = full_page_broadcast(1, 0x33).encode();
    let decoded = Packet::decode(&frame).unwrap();
    let mut a = PageTable::new(HostId(1), MetherConfig::new());
    let mut b = PageTable::new(HostId(2), MetherConfig::new());
    let mut fx = Vec::new();
    for t in [&mut a, &mut b] {
        let _ = t.access(
            PageId::new(0),
            View::short_data(),
            MapMode::ReadOnly,
            1,
            &mut fx,
        );
        t.handle_packet(&decoded, &mut fx);
    }
    // Transfer consistency of the page to host 1, which then writes.
    let transfer = Packet::PageData {
        from: HostId(0),
        page: PageId::new(0),
        length: PageLength::Full,
        generation: Generation(2),
        transfer_to: Some(HostId(1)),
        data: Bytes::from(vec![0x33u8; 8192]),
    };
    a.handle_packet(&transfer, &mut fx);
    assert!(a.is_consistent_holder(PageId::new(0)));
    a.page_buf_mut(PageId::new(0))
        .unwrap()
        .write_u32(0, 0xdead_beef)
        .unwrap();
    assert_eq!(
        b.page_buf(PageId::new(0)).unwrap().read_u32(0).unwrap(),
        0x3333_3333,
        "host B's shared copy is isolated from host A's write"
    );
}

#[test]
fn pagebuf_cow_semantics_under_payload_round_trip() {
    // Belt-and-braces: the PageBuf-level invariant driving all of the
    // above, stated directly.
    let mut page = PageBuf::new_zeroed();
    page.write_u32(0, 1).unwrap();
    let v1 = page.payload(8192);
    page.write_u32(0, 2).unwrap();
    let v2 = page.payload(8192);
    assert_eq!(&v1[..4], &1u32.to_le_bytes());
    assert_eq!(&v2[..4], &2u32.to_le_bytes());
    assert!(!v1.shares_storage_with(&v2));
}
