//! Soak-harness replay coverage: the randomized scenarios are pure
//! functions of their seed, so every failure is a one-line reproducer.
//! This file pins that property — same seed, same report, serial or
//! lane-parallel — plus a regression test for each latent bug the first
//! soak batches flushed out:
//!
//! * **Data-wait retry escalation** (`crates/sim/src/host.rs`): a
//!   data-driven read blocked over a stale copy transmits nothing, so a
//!   lost waking broadcast stranded it forever; the fault-retry timer
//!   now drops the stale copy and escalates one re-execution to demand
//!   drive.
//! * **Sleeper boost on timer wakeups** (`crates/sim/src/host.rs`): a
//!   process returning from a kernel sleep never took the one-shot
//!   boost, so a saturated server queue starved it indefinitely.
//! * **NIC request coalescing** (`crates/sim/src/host.rs`): identical
//!   queued page requests each cost the server a full reply, letting
//!   retrying clients backlog the home server without bound. The
//!   mitigation is opt-in (`Calib::with_request_coalescing`, on for
//!   every soak deployment): the paper's servers processed each
//!   datagram individually, and its measured protocol rankings —
//!   notably P3's divergence — include that duplicated load.
//! * **Partition-aware observer grouping**
//!   (`crates/sim/src/sim/observe.rs`): two devices with byte-identical
//!   views in *different* connected components legitimately elect
//!   different trees; the old invariant (d) flagged that as a bug.
//!
//! The CI entry point is `ci_soak_batch`: `METHER_SOAK_SCENARIOS` and
//! `METHER_SOAK_SEED` size and place the batch, and every seed is
//! printed before its run so a CI failure names its reproducer.

use mether_core::{BridgeTopology, PageId};
use mether_net::{AgeHorizon, FabricConfig, FabricEvent, SimDuration};
use mether_sim::{RunLimits, SimConfig, Simulation, Topology};
use mether_workloads::{
    base_seed_from_env, run_cross_engine_soak, run_large_faulted_soak, run_large_soak, run_soak,
    scenario_count_from_env, CountingConfig, DisjointPageCounter, PollingReader, Publisher,
    SoakMix, SoakScenario, SoakShape,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scenarios that flushed real bugs in the first soak batches; each
/// must still run to completion (all are fault-free, so
/// [`SoakScenario::run`] asserts completion itself). They are pinned as
/// the explicit scenarios their seeds *originally* drew — the generator
/// has since grown the random-graph shape, paired `LinkUp`s, and
/// sub-round-trip aging horizons, which redraws every seed.
///
/// * old seed 2 — star(3)x2 mixed, Transits aging: pinned the data-wait
///   retry arming and the paper-pace run budgets;
/// * old seed 21 — ring(6)x4 mixed, static election, SimTime aging:
///   pinned the static subscriptions for data-driven P5 readers, which
///   transmit nothing a bridge could learn interest from;
/// * old seed 24 — ring(6)x2 mixed, live election, SimTime aging:
///   pinned the sleeper boost on timer wakeups and NIC request
///   coalescing (the publisher starved behind a server queue of
///   retried reads).
#[test]
fn pinned_scenarios_that_flushed_bugs_stay_fixed() {
    let pins = [
        SoakScenario {
            seed: 2,
            shape: SoakShape::Star(3),
            hosts_per_segment: 2,
            election_live: false,
            holder_directed: false,
            aging: AgeHorizon::Transits(115),
            loss: 0.0,
            faults: vec![],
            mix: SoakMix::Mixed,
            target: 10,
        },
        SoakScenario {
            seed: 21,
            shape: SoakShape::Ring(6),
            hosts_per_segment: 4,
            election_live: false,
            holder_directed: true,
            aging: AgeHorizon::SimTime(SimDuration::from_millis(33)),
            loss: 0.0,
            faults: vec![],
            mix: SoakMix::Mixed,
            target: 9,
        },
        SoakScenario {
            seed: 24,
            shape: SoakShape::Ring(6),
            hosts_per_segment: 2,
            election_live: true,
            holder_directed: true,
            aging: AgeHorizon::SimTime(SimDuration::from_millis(36)),
            loss: 0.0,
            faults: vec![],
            mix: SoakMix::Mixed,
            target: 14,
        },
    ];
    for sc in pins {
        assert!(sc.must_finish(), "pin {} is no longer clean", sc.seed);
        sc.run(None);
    }
}

/// Same seed, same report: a faulty, lossy scenario (nothing about it
/// is required to finish) replays byte-identically — the property that
/// turns a soak failure into a regression test.
#[test]
fn soak_seed_replays_identically() {
    let seed = (0..)
        .find(|&s| {
            let sc = SoakScenario::from_seed(s);
            !sc.faults.is_empty() && sc.loss > 0.0
        })
        .unwrap();
    let sc = SoakScenario::from_seed(seed);
    let a = sc.run(None);
    let b = sc.run(None);
    assert_eq!(a, b, "seed {seed}");
}

/// The lane-parallel engine must produce the serial schedule exactly:
/// identical digests over the first eight seeds, faults and all.
#[test]
fn serial_and_workers_schedules_agree() {
    for seed in 0..8 {
        let sc = SoakScenario::from_seed(seed);
        let serial = sc.run(None);
        let workers = sc.run(Some(2));
        assert_eq!(serial, workers, "seed {seed} diverged under Workers(2)");
    }
}

/// The CI soak batch: bounded, seeded, every seed printed before its
/// run. Locally this runs a handful of scenarios; CI sets
/// `METHER_SOAK_SCENARIOS=50` (and optionally `METHER_SOAK_SEED` to
/// move the window).
#[test]
fn ci_soak_batch() {
    let count = scenario_count_from_env(6);
    let base = base_seed_from_env(0);
    let reports = run_soak(base, count, None);
    assert_eq!(reports.len(), count);
}

/// Minimized data-wait liveness: a P5 pair across a two-segment fabric
/// on a 10%-lossy ether. The pair's data-driven reads block without
/// transmitting; whenever the partner's single waking broadcast is
/// lost, only the fault-retry escalation (drop the stale copy, re-issue
/// as a demand fetch) can recover a *blocked* waiter. Without it this
/// exact run (ether seed 5) livelocks at its limits; with it, it must
/// finish. (Seeds where the loss pattern instead leaves a waiter
/// hot-spinning on a present stale copy never block at all and stay
/// out of the retry timer's reach — that livelock is the protocols'
/// documented loss behaviour, which is why the soak generator never
/// asserts completion for lossy scenarios.)
#[test]
fn lossy_data_wait_recovers_via_retry_escalation() {
    let fabric = FabricConfig::new(BridgeTopology::star(2));
    let mut cfg = SimConfig::paper(4);
    cfg.ether.loss = 0.10;
    cfg.ether.seed = 5;
    cfg.calib = cfg
        .calib
        .with_fault_retry(SimDuration::from_millis(20))
        .with_request_coalescing();
    cfg.topology = Topology::fabric(fabric);
    let mut sim = Simulation::new(cfg);
    let counting = CountingConfig {
        target: 10,
        processes: 2,
        spin: SimDuration::from_micros(48),
    };
    // Striped homes: page 2 → segment 0, page 3 → segment 1.
    let (page_a, page_b) = (PageId::new(2), PageId::new(3));
    sim.create_owned(1, page_a);
    sim.create_owned(3, page_b);
    sim.add_process(
        1,
        Box::new(DisjointPageCounter::protocol5(counting, 0, page_a, page_b)),
    );
    sim.add_process(
        3,
        Box::new(DisjointPageCounter::protocol5(counting, 1, page_b, page_a)),
    );
    let outcome = sim.run(RunLimits {
        max_sim_time: SimDuration::from_millis(5_000),
        max_events: 2_000_000,
    });
    sim.check_invariants();
    assert!(
        outcome.finished,
        "lossy P5 pair livelocked: events={} wall={}",
        outcome.events, outcome.wall
    );
}

/// One lossy P5 pair across a two-segment star: the shared minimized
/// deployment behind the loss-resilience regressions below. `ether_seed`
/// picks the loss pattern; `rebroadcast` optionally arms the holder
/// re-broadcast mitigation.
fn lossy_p5_pair(ether_seed: u64, rebroadcast: Option<SimDuration>) -> bool {
    let fabric = FabricConfig::new(BridgeTopology::star(2));
    let mut cfg = SimConfig::paper(4);
    cfg.ether.loss = 0.10;
    cfg.ether.seed = ether_seed;
    cfg.calib = cfg
        .calib
        .with_fault_retry(SimDuration::from_millis(20))
        .with_request_coalescing();
    if let Some(every) = rebroadcast {
        cfg.calib = cfg.calib.with_holder_rebroadcast(every);
    }
    cfg.topology = Topology::fabric(fabric);
    let mut sim = Simulation::new(cfg);
    let counting = CountingConfig {
        target: 10,
        processes: 2,
        spin: SimDuration::from_micros(48),
    };
    // Striped homes: page 2 → segment 0, page 3 → segment 1.
    let (page_a, page_b) = (PageId::new(2), PageId::new(3));
    sim.create_owned(1, page_a);
    sim.create_owned(3, page_b);
    sim.add_process(
        1,
        Box::new(DisjointPageCounter::protocol5(counting, 0, page_a, page_b)),
    );
    sim.add_process(
        3,
        Box::new(DisjointPageCounter::protocol5(counting, 1, page_b, page_a)),
    );
    let outcome = sim.run(RunLimits {
        max_sim_time: SimDuration::from_millis(5_000),
        max_events: 2_000_000,
    });
    sim.check_invariants();
    outcome.finished
}

/// Minimized hot-spin loss livelock (ether seed 0 of the pair above):
/// the fault-retry escalation only reaches *blocked* waiters, but this
/// loss pattern leaves a P5 waiter spinning on a present stale copy —
/// its demand checks hit locally, it transmits nothing, and the
/// partner's single waking broadcast is gone, so the run is stranded
/// with the retry mitigation fully armed. Holder re-broadcast
/// ([`mether_sim::Calib::with_holder_rebroadcast`]) breaks exactly
/// this: the holder re-publishes on a cadence, the spinner's next check
/// sees the transit, and the run completes — which is why the soak
/// harness now asserts completion for lossy fault-free scenarios.
#[test]
fn hot_spin_loss_livelock_needs_holder_rebroadcast() {
    assert!(
        !lossy_p5_pair(0, None),
        "ether seed 0 must livelock without holder re-broadcast \
         (if this starts finishing, the pinned loss pattern drifted)"
    );
    assert!(
        lossy_p5_pair(0, Some(SimDuration::from_millis(25))),
        "holder re-broadcast must recover the hot-spinning waiter"
    );
}

/// A paced publisher on segment 0 with one polling reader on segment 1,
/// under a **sub-round-trip** interest-aging horizon (4 ms, against a
/// ~13 ms paper-pace request → reply round trip). `grace` optionally
/// arms the fabric's reply-grace floor.
fn sub_round_trip_aging_run(grace: Option<SimDuration>) -> bool {
    let mut fabric = FabricConfig::new(BridgeTopology::star(2))
        .with_aging(AgeHorizon::SimTime(SimDuration::from_millis(4)));
    if let Some(g) = grace {
        fabric = fabric.with_reply_grace(g);
    }
    let mut cfg = SimConfig::paper(4);
    cfg.calib = cfg
        .calib
        .with_fault_retry(SimDuration::from_millis(20))
        .with_request_coalescing();
    cfg.topology = Topology::fabric(fabric);
    let mut sim = Simulation::new(cfg);
    let page = PageId::new(0);
    sim.create_owned(0, page);
    sim.add_process(
        0,
        Box::new(Publisher::paced(page, 8, SimDuration::from_millis(1))),
    );
    sim.add_process(
        2,
        Box::new(PollingReader::new(
            page,
            8,
            SimDuration::from_millis(4),
            SimDuration::ZERO,
        )),
    );
    let outcome = sim.run(RunLimits {
        max_sim_time: SimDuration::from_millis(3_000),
        max_events: 2_000_000,
    });
    sim.check_invariants();
    outcome.finished
}

/// Sub-round-trip aging horizons used to be a deterministic livelock
/// (the soak generator floored its draw at 16 ms to avoid them): the
/// reader's request stamps interest that expires before the ~13 ms
/// reply arrives, the reply is filtered, and the 20 ms fault retry
/// re-runs the same doomed exchange forever. The reply-grace floor
/// (`FabricConfig::with_reply_grace`) holds *request-stamped* interest
/// through the round trip independent of the horizon, so the same
/// deployment completes — pinned here because the generator now draws
/// horizons down to 2 ms and relies on it.
#[test]
fn sub_round_trip_aging_needs_the_reply_grace_floor() {
    assert!(
        !sub_round_trip_aging_run(None),
        "a 4 ms horizon must strand the reader without the grace floor \
         (if this starts finishing, the round-trip cost model drifted)"
    );
    assert!(
        sub_round_trip_aging_run(Some(SimDuration::from_millis(16))),
        "the reply-grace floor must let the reply through"
    );
}

/// The cross-engine batch: every fault-free scenario (clean and lossy)
/// runs on the discrete-event simulator *and* the threaded runtime,
/// and [`run_cross_engine_soak`] asserts both engines complete and
/// agree on every workload page's final word. `METHER_SOAK_SCENARIOS`
/// sizes the batch (CI pins it), `METHER_SOAK_SEED` moves the window;
/// every seed is printed before its run.
#[test]
fn cross_engine_soak_batch() {
    let count = scenario_count_from_env(25);
    let base = base_seed_from_env(0);
    let reports = run_cross_engine_soak(base, count, None);
    assert_eq!(reports.len(), count);
    assert!(
        reports
            .iter()
            .any(|(_, r)| r.runtime.metrics.net.lost > 0 || r.sim.outcome.finished),
        "the batch must include real runs"
    );
}

/// The CI large-fabric batch: 100+ device shapes (the 16×16 mesh,
/// rings, balanced trees, and random graphs past 100 devices) from the
/// dedicated generator ([`SoakScenario::large_from_seed`]), simulator
/// only, every run asserted to complete inside
/// [`SoakScenario::run`] (large scenarios are fault-free by
/// construction). `METHER_SOAK_SCENARIOS` sizes the batch — CI runs a
/// bounded one with `METHER_OBSERVE=1` — and `METHER_SOAK_SEED` moves
/// the window; every seed prints before its run.
#[test]
fn ci_large_fabric_soak() {
    let count = scenario_count_from_env(2);
    let base = base_seed_from_env(0);
    let reports = run_large_soak(base, count, None);
    assert_eq!(reports.len(), count);
    for (seed, r) in &reports {
        assert!(r.outcome.finished, "large seed {seed} hit its limits");
    }
}

/// The faulted large-fabric CI batch: the same 100+ device shapes as
/// [`ci_large_fabric_soak`], with mid-run `BridgeDown`/`LinkDown`
/// events and paired recoveries layered on top
/// ([`SoakScenario::large_faulted_from_seed`]). Completion is *not*
/// asserted — a large fabric's reconvergence can legitimately outlast
/// the budget — but every run must replay to the same digest, and the
/// invariant observer sweeps throughout (CI runs this with
/// `METHER_OBSERVE=1`).
#[test]
fn ci_large_faulted_soak() {
    let count = scenario_count_from_env(2);
    let base = base_seed_from_env(0);
    let reports = run_large_faulted_soak(base, count, None);
    assert_eq!(reports.len(), count);
    let replay = run_large_faulted_soak(base, count, None);
    for ((seed, a), (_, b)) in reports.iter().zip(replay.iter()) {
        assert_eq!(
            a, b,
            "faulted large seed {seed} did not replay to the same digest"
        );
    }
}

/// True when the invariant observer is active in this process — the
/// gate [`mether_sim`] itself applies: on under `debug_assertions`
/// unless `METHER_OBSERVE` disables it, opt-in via `METHER_OBSERVE=1`
/// in release.
fn observer_active() -> bool {
    match std::env::var("METHER_OBSERVE") {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off"),
        Err(_) => cfg!(debug_assertions),
    }
}

/// Corruption-injection differential: over ≥8 printed seeds, run a
/// scenario partway, plant exactly one corruption — a second consistent
/// holder on a host table, a holder belief pointing off-port, or a
/// learned-interest entry for a segment the device has no port on — and
/// assert the **incremental** observer ([`Simulation::sweep_dirty`])
/// flags it on its very next sweep, the same sweep the **full oracle**
/// ([`Simulation::check_invariants`]) flags it on. The oracle runs on an
/// identically-prepared twin (the build is a pure function of the seed),
/// because a sweep panic poisons the first simulation's observer state.
///
/// This is the test that keeps the dirty-set fast path honest: every
/// corruption goes through the entities' ordinary mutation paths, so if
/// a future change forgets to mark some state transition dirty, the
/// incremental half here goes quiet while the oracle still fires.
#[test]
fn corruption_is_flagged_by_incremental_and_full_alike() {
    if !observer_active() {
        eprintln!("corruption-diff: observer off in this build; skipping");
        return;
    }
    let warmup = RunLimits {
        max_sim_time: SimDuration::from_millis(40),
        max_events: 1_000_000,
    };
    let mut flagged = 0u32;
    let mut seed = 0u64;
    while flagged < 8 {
        let sc = SoakScenario::from_seed(seed);
        // Fault-free fabrics only: the observer's liveness gate skips
        // downed devices, which is its own (already-tested) behaviour,
        // not the differential under test here.
        if !sc.faults.is_empty() || sc.devices() < 2 {
            seed += 1;
            continue;
        }
        let kind = flagged % 3;
        println!("corruption-diff[{flagged}/8] seed={seed} kind={kind}: {sc}");
        let prepare = || {
            let mut sim = sc.build();
            sim.run(warmup);
            // Clean so far — and settles the incremental holder map, so
            // the panic below is attributable to the planted corruption.
            sim.check_invariants();
            sim
        };
        let corrupt = |sim: &mut Simulation| -> bool {
            match kind {
                0 => {
                    // A page with exactly one consistent holder gains a
                    // second one on another host (mid-transit pages can
                    // transiently have none — find a settled one).
                    let found = (0..sim.host_count()).find_map(|h| {
                        sim.host(h)
                            .table
                            .tracked_pages()
                            .find(|&p| sim.host(h).table.is_consistent_holder(p))
                            .map(|p| (h, p))
                    });
                    let Some((holder, page)) = found else {
                        return false;
                    };
                    let twin = (holder + 1) % sim.host_count();
                    sim.create_owned(twin, page);
                    true
                }
                _ => {
                    // Device 0 gets state naming a segment it has no
                    // port on (falling back to an out-of-range segment
                    // id on shapes like ring(2) where device 0 spans
                    // every segment).
                    let segments = sim.segment_count();
                    let ports = sc.topology().ports(0).to_vec();
                    let bad = (0..segments)
                        .find(|s| !ports.contains(s))
                        .unwrap_or(segments);
                    let fabric = sim.fabric_mut_for_test().expect("fabric topology");
                    let policy = fabric.device_mut(0).policy_mut();
                    let page = PageId::new(0);
                    if kind == 1 {
                        policy.corrupt_holder_belief_for_test(page, bad);
                    } else {
                        policy.corrupt_learned_for_test(page, bad);
                    }
                    true
                }
            }
        };
        let mut incremental = prepare();
        if !corrupt(&mut incremental) {
            seed += 1;
            continue;
        }
        let inc = catch_unwind(AssertUnwindSafe(|| incremental.sweep_dirty()));
        assert!(
            inc.is_err(),
            "seed {seed} kind {kind}: the incremental observer missed the corruption"
        );
        let mut oracle = prepare();
        assert!(corrupt(&mut oracle), "seed {seed}: twin prep diverged");
        let full = catch_unwind(AssertUnwindSafe(|| oracle.check_invariants()));
        assert!(
            full.is_err(),
            "seed {seed} kind {kind}: the full oracle missed the corruption"
        );
        flagged += 1;
        seed += 1;
    }
}

/// Regression for observer invariant (d): the exact scenario soak seed
/// 11 originally drew (before the generator's aging floor changed what
/// that seed produces). Its fault schedule partitions the ring so that
/// device 1 is isolated while devices 2 and 3 stay connected; during
/// reconvergence both sides transiently hold byte-identical views yet
/// elect their own islands' trees. The election is component-relative
/// by design — the observer must group by (views, component), not by
/// views alone, or this run panics at 67.7 ms.
#[test]
fn observer_tolerates_identical_views_across_partitions() {
    let sc = SoakScenario {
        seed: 11,
        shape: SoakShape::Ring(4),
        hosts_per_segment: 2,
        election_live: true,
        holder_directed: false,
        aging: AgeHorizon::SimTime(SimDuration::from_millis(27)),
        loss: 0.0,
        faults: vec![
            (
                SimDuration::from_millis(44),
                FabricEvent::LinkDown {
                    device: 1,
                    segment: 2,
                },
            ),
            (SimDuration::from_millis(51), FabricEvent::BridgeDown(0)),
            (SimDuration::from_millis(96), FabricEvent::BridgeUp(0)),
        ],
        mix: SoakMix::Mixed,
        target: 12,
    };
    // Faults are scheduled, so completion is not asserted — the run
    // only has to survive the always-on invariant sweeps.
    sc.run(None);
}
