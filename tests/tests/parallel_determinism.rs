//! Parallel-vs-serial determinism: the lane-parallel engine must be a
//! drop-in replacement for the serial oracle schedule.
//!
//! For every segmented protocol workload here — counting P1/P5
//! stretched across a segment boundary, mirror-image counting pairs
//! (the harshest tie workload: both pairs hit the bridge at identical
//! nanoseconds), the distributed solver with one rank per segment (dry
//! and lossy), and the ring-failover experiment (live election, an
//! injected root death, fault retries) — [`ParallelMode::Workers`]`(4)`
//! must produce **byte-identical final page states and metrics** to
//! [`ParallelMode::Serial`]: same page bytes, generations and holders
//! on every host, same virtual wall clock, CPU split, context switches,
//! fault latencies, traffic and bridge counters. The fingerprint is the
//! same flattening the delivery-mode regression suite uses, extended
//! with the per-segment and bridge counters the parallel engine
//! partitions.
//!
//! Schedule diversity comes from varied compute-spin lengths (which
//! shift every burst boundary) and lossy-ether seeds where the workload
//! tolerates loss; the cross-bridge counting workloads run lossless
//! because a lost transfer wedges them under the *serial* engine too —
//! a protocol property, not an engine one.

use mether_core::PageId;
use mether_net::SimDuration;
use mether_sim::{
    ParallelMode, ProtocolMetrics, RunLimits, RunOutcome, SimConfig, Simulation, Topology,
};
use mether_workloads::{
    build_counting, build_ring_failover, build_segmented_counting_pairs, build_segmented_solver,
    CountingConfig, FailoverConfig, Protocol, SolverConfig, SolverWorker,
};

/// FNV-1a over a byte slice — cheap, deterministic content digest.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Everything observable about a finished simulation, flattened to a
/// comparable string (floats via `to_bits` so NaN ratios compare).
fn fingerprint(sim: &Simulation, m: &ProtocolMetrics, outcome: RunOutcome) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for h in 0..sim.host_count() {
        let host = sim.host(h);
        writeln!(
            out,
            "host{h}: ctx={} server_ns={} latencies={:?} heard={} max_q={}",
            host.ctx_switches,
            host.server_time.as_nanos(),
            host.fault_latencies
                .iter()
                .map(|d| d.as_nanos())
                .collect::<Vec<_>>(),
            host.frames_heard,
            host.max_server_queue,
        )
        .unwrap();
        writeln!(out, "  table_stats={:?}", host.table.stats()).unwrap();
        for page in host.table.tracked_pages() {
            let buf = host.table.page_buf(page);
            writeln!(
                out,
                "  page{}: gen={:?} holder={} locked={} valid={:?} digest={:016x}",
                page.index(),
                host.table.generation(page),
                host.table.is_consistent_holder(page),
                host.table.is_locked(page),
                buf.map(|b| b.valid_len()),
                buf.map_or(0, |b| fnv(b.as_slice())),
            )
            .unwrap();
        }
    }
    for seg in 0..sim.segment_count() {
        writeln!(out, "seg{seg}: {:?}", sim.segment_stats(seg)).unwrap();
    }
    writeln!(
        out,
        "bridge: {:?} devices={:?} reconv={} stall={:?}",
        sim.bridge_stats(),
        sim.bridge_device_stats(),
        sim.fabric_reconvergences(),
        sim.fabric_stall(),
    )
    .unwrap();
    writeln!(
        out,
        "outcome: finished={} wall={} events={}",
        outcome.finished,
        outcome.wall.as_nanos(),
        outcome.events,
    )
    .unwrap();
    writeln!(
        out,
        "metrics: finished={} wall={} user={} sys={} net={:?} load={:016x} bpa={:016x} ctx={} cpa={:016x} lat={} heard=({:016x},{}) losses={} wins={} additions={} max_q={}",
        m.finished,
        m.wall.as_nanos(),
        m.user.as_nanos(),
        m.sys.as_nanos(),
        m.net,
        m.net_load_bps.to_bits(),
        m.bytes_per_addition.to_bits(),
        m.ctx_switches,
        m.ctx_per_addition.to_bits(),
        m.avg_latency.as_nanos(),
        m.frames_heard_mean.to_bits(),
        m.frames_heard_max,
        m.losses,
        m.wins,
        m.additions,
        m.max_server_queue,
    )
    .unwrap();
    out
}

fn run_and_print(mut sim: Simulation, mode: ParallelMode, limits: RunLimits) -> String {
    sim.set_parallel_mode(mode);
    let outcome = sim.run(limits);
    let m = sim.metrics("det", outcome.finished, 1);
    fingerprint(&sim, &m, outcome)
}

/// Counting P1/P5 with the two parties on their own bridged segment.
/// Lossless: the cross-bridge transfer has no retransmission for a lost
/// data frame, so loss wedges the run under either engine. The spin
/// length varies the schedule instead — every burst boundary moves.
fn counting_pair(protocol: Protocol, spin_us: u64) -> Simulation {
    let cfg = CountingConfig {
        target: 192,
        processes: 2,
        spin: SimDuration::from_micros(spin_us),
    };
    let mut sim_cfg = SimConfig::paper(2);
    sim_cfg.topology = Topology::segmented(2);
    build_counting(protocol, &cfg, sim_cfg)
}

#[test]
fn counting_protocols_identical_under_serial_and_workers() {
    let limits = RunLimits {
        max_sim_time: SimDuration::from_secs(120),
        ..RunLimits::default()
    };
    for protocol in [Protocol::P1, Protocol::P5] {
        for spin_us in [48, 53, 61] {
            let serial = run_and_print(
                counting_pair(protocol, spin_us),
                ParallelMode::Serial,
                limits,
            );
            assert!(
                serial.contains("finished=true"),
                "{protocol:?} spin {spin_us}µs: the serial oracle must finish"
            );
            let par = run_and_print(
                counting_pair(protocol, spin_us),
                ParallelMode::Workers(4),
                limits,
            );
            assert_eq!(
                serial, par,
                "{protocol:?} spin {spin_us}µs: Workers(4) diverged from the serial oracle"
            );
        }
    }
}

#[test]
fn mirror_counting_pairs_identical_under_serial_and_workers() {
    // Pair A (segments 0/1) and pair B (segments 2/3) are exact mirror
    // images: every frame of pair B hits the shared bridge at the same
    // nanosecond as pair A's twin. Ties like these are where a naive
    // parallel schedule diverges first — the (time, tier, sequence)
    // order must pin them.
    let cfg = CountingConfig {
        target: 96,
        processes: 2,
        spin: SimDuration::from_micros(48),
    };
    let limits = RunLimits {
        max_sim_time: SimDuration::from_secs(120),
        ..RunLimits::default()
    };
    let serial = run_and_print(
        build_segmented_counting_pairs(4, 2, &cfg),
        ParallelMode::Serial,
        limits,
    );
    assert!(serial.contains("finished=true"));
    let par = run_and_print(
        build_segmented_counting_pairs(4, 2, &cfg),
        ParallelMode::Workers(4),
        limits,
    );
    assert_eq!(serial, par, "4×2 mirror pairs diverged under Workers(4)");
}

#[test]
fn segmented_solver_identical_under_serial_and_workers() {
    let cfg = SolverConfig {
        iterations: 6,
        work_per_iteration: SimDuration::from_millis(20),
    };
    for ranks in [3, 4] {
        let build = || build_segmented_solver(ranks, 2, cfg);
        let serial = run_and_print(build(), ParallelMode::Serial, RunLimits::default());
        assert!(serial.contains("finished=true"));
        let par = run_and_print(build(), ParallelMode::Workers(4), RunLimits::default());
        assert_eq!(serial, par, "{ranks}-rank solver diverged under Workers(4)");
    }
}

#[test]
fn lossy_segmented_solver_identical_under_serial_and_workers() {
    // The solver's data-driven halo waits re-request after a loss, so a
    // lossy ether exercises every per-lane RNG draw without wedging.
    let cfg = SolverConfig {
        iterations: 6,
        work_per_iteration: SimDuration::from_millis(20),
    };
    const RANKS: usize = 3;
    let build = |seed: u64| {
        let mut sim_cfg = SimConfig::paper(RANKS);
        sim_cfg.ether = sim_cfg.ether.with_loss(0.01, seed);
        sim_cfg.topology = Topology::segmented(RANKS);
        let mut sim = Simulation::new(sim_cfg);
        for rank in 0..RANKS {
            sim.create_owned(rank, PageId::new(rank as u32));
            sim.add_process(rank, Box::new(SolverWorker::new(cfg, rank, RANKS)));
        }
        sim
    };
    for seed in [1, 7, 42] {
        let serial = run_and_print(build(seed), ParallelMode::Serial, RunLimits::default());
        let par = run_and_print(build(seed), ParallelMode::Workers(4), RunLimits::default());
        assert_eq!(
            serial, par,
            "lossy solver seed {seed} diverged under Workers(4)"
        );
    }
}

#[test]
fn ring_failover_identical_under_serial_and_workers() {
    // The hard case: live election hellos on every segment, an injected
    // root death mid-run, fault retries, holder-directed routing.
    let cfg = FailoverConfig::ring_4x8();
    let limits = RunLimits {
        max_sim_time: SimDuration::from_secs(10),
        ..RunLimits::default()
    };
    let serial = run_and_print(build_ring_failover(&cfg), ParallelMode::Serial, limits);
    let par = run_and_print(build_ring_failover(&cfg), ParallelMode::Workers(4), limits);
    assert_eq!(serial, par, "ring failover diverged under Workers(4)");
}

#[test]
fn ineligible_deployments_fall_back_to_serial() {
    // Flat topology: Workers(4) must be exactly the serial schedule.
    let cfg = CountingConfig {
        target: 64,
        processes: 2,
        spin: SimDuration::from_micros(48),
    };
    let mut sim_cfg = SimConfig::paper(2);
    sim_cfg.ether = sim_cfg.ether.with_loss(0.02, 7);
    let limits = RunLimits {
        max_sim_time: SimDuration::from_secs(120),
        ..RunLimits::default()
    };
    let build = || build_counting(Protocol::P1, &cfg, sim_cfg.clone());
    let serial = run_and_print(build(), ParallelMode::Serial, limits);
    let par = run_and_print(build(), ParallelMode::Workers(4), limits);
    assert_eq!(serial, par, "flat fallback must be the serial schedule");
}

#[test]
fn parallel_run_completes_a_page_migration() {
    // Belt-and-braces liveness check independent of the fingerprints: a
    // two-segment pair actually moves the page and finishes.
    let mut sim = counting_pair(Protocol::P1, 48);
    sim.set_parallel_mode(ParallelMode::Workers(2));
    let outcome = sim.run(RunLimits {
        max_sim_time: SimDuration::from_secs(120),
        ..RunLimits::default()
    });
    assert!(outcome.finished, "P1 pair must finish under Workers(2)");
    let page = PageId::new(0);
    assert!(
        (0..2).any(|h| sim.host(h).table.is_consistent_holder(page)),
        "someone must hold the counted page"
    );
}
