//! The multi-segment scaling claim, end to end.
//!
//! The paper's cost model says per-host load stays O(1) because the
//! network does the fan-out — but on one shared segment every host
//! still *hears* every frame, so per-host frames-snooped grows with
//! cluster-wide traffic. Splitting the cluster into bridged segments
//! with a filtering bridge caps that at the segment's own traffic.
//!
//! This file pins the headline number (≥3× fewer frames snooped per
//! host on 4×8 segments vs 1×32 flat, publisher broadcast workload —
//! the figures recorded in `BENCH_baseline.json`), the `HostMask`
//! properties behind `Recipients::Subset`, and the delivery-mode
//! equivalence of the masked fan-out path.

use mether_core::HostMask;
use mether_net::{FabricConfig, RequestRouting, SimDuration};
use mether_sim::{DeliveryMode, Recipients, RunLimits, SimConfig, Simulation, Topology};
use mether_workloads::{
    build_cross_segment_counting, build_fabric_readers, build_publisher_sim,
    build_segmented_publisher, run_segmented, CountingConfig, Protocol,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// The acceptance criterion.
// ---------------------------------------------------------------------

fn mean_frames_heard(sim: &Simulation) -> f64 {
    let n = sim.host_count();
    (0..n).map(|h| sim.host(h).frames_heard).sum::<u64>() as f64 / n as f64
}

#[test]
fn four_by_eight_segments_snoop_at_least_3x_fewer_frames_than_flat_32() {
    const CYCLES: u32 = 64;

    let mut flat = build_publisher_sim(32, CYCLES);
    let flat_outcome = flat.run(RunLimits::default());
    assert!(flat_outcome.finished);

    let mut seg = build_segmented_publisher(4, 8, CYCLES);
    let report = run_segmented(&mut seg, "publisher 4x8", 1, RunLimits::default());
    assert!(report.outcome.finished);

    // Identical offered traffic: the publisher broadcast the same
    // number of frames in both deployments.
    assert_eq!(
        flat.net_stats().packets,
        seg.net_stats().packets,
        "same broadcasts on the wire"
    );

    let flat_mean = mean_frames_heard(&flat);
    let seg_mean = mean_frames_heard(&seg);
    let ratio = flat_mean / seg_mean;
    // The BENCH_baseline.json `_meta_pr3` figures (visible with
    // `--nocapture`).
    eprintln!(
        "publisher x{CYCLES}: transits={} | frames-heard/host flat 1x32 = {flat_mean:.2}, segmented 4x8 = {seg_mean:.2}, ratio {ratio:.2}x | cross-segment bytes = {}",
        flat.net_stats().packets,
        report.cross_segment_bytes,
    );
    assert!(
        ratio >= 3.0,
        "frames snooped per host must shrink ≥3× (flat {flat_mean:.1}, segmented {seg_mean:.1}, ratio {ratio:.2}×)"
    );

    // Where the win comes from: the bridge filtered every transit (page
    // 0 is homed on segment 0 and nobody off-segment wants it), so the
    // other three segments' wires — and their 24 hosts — saw nothing.
    assert_eq!(report.cross_segment_bytes, 0);
    for s in 1..4 {
        assert_eq!(seg.segment_stats(s).packets, 0, "segment {s} silent");
    }
    for h in 8..32 {
        assert_eq!(seg.host(h).frames_heard, 0, "host {h} snooped nothing");
    }
    // And the hosts sharing the publisher's segment still snoop it all —
    // per-host load is the segment's traffic, not the cluster's.
    for h in 1..8 {
        assert_eq!(
            seg.host(h).frames_heard,
            seg.segment_stats(0).packets,
            "host {h} heard its own segment"
        );
    }
}

// ---------------------------------------------------------------------
// The PR 4 acceptance criterion: on a holder-stable request workload
// (one publisher-side holder at 32 hosts, readers polling from every
// other segment of a 4×8 balanced tree), holder-directed routing must
// cut the request frames crossing the fabric at least 2× relative to
// PR 3's flooding — while changing nothing about the protocol outcome.
// ---------------------------------------------------------------------

#[test]
fn routed_fabric_crosses_at_least_2x_fewer_request_frames_than_flooding() {
    const ROUNDS: u32 = 48;
    let run = |routing: RequestRouting| {
        let fabric = FabricConfig::tree(4, 2).with_routing(routing);
        let mut sim = build_fabric_readers(fabric, 8, ROUNDS);
        let report = run_segmented(&mut sim, "readers 4x8 tree", 1, RunLimits::default());
        assert!(report.outcome.finished, "{:?}", report.outcome);
        report
    };
    let flood = run(RequestRouting::Flood);
    let routed = run(RequestRouting::HolderDirected);

    // Identical protocol work: every reader took the same faults and
    // completed the same rounds in both modes.
    assert_eq!(flood.faults, routed.faults, "same request-bearing faults");
    assert_eq!(flood.metrics.additions, routed.metrics.additions);
    assert_eq!(flood.faults, 3 * u64::from(ROUNDS), "one fault per round");

    // The wire difference: request frames crossing the fabric.
    let (f, r) = (
        flood.metrics.bridge.req_forwarded,
        routed.metrics.bridge.req_forwarded,
    );
    let ratio = f as f64 / r as f64;
    eprintln!(
        "readers x{ROUNDS} on 4x8 tree: fabric-crossing requests flood = {f}, holder-directed = {r}, ratio {ratio:.2}x"
    );
    assert!(
        ratio >= 2.0,
        "holder-directed routing must cut fabric-crossing requests ≥2× (flood {f}, routed {r}, ratio {ratio:.2}×)"
    );
    // Data traffic is interest-driven in both modes — routing requests
    // must not inflate it.
    assert!(routed.metrics.bridge.bytes_forwarded <= flood.metrics.bridge.bytes_forwarded);
}

// ---------------------------------------------------------------------
// Cross-segment protocol correctness under bridge faults.
// ---------------------------------------------------------------------

#[test]
fn cross_segment_counting_finishes_and_crosses_the_bridge() {
    let cfg = CountingConfig {
        target: 128,
        processes: 2,
        spin: SimDuration::from_micros(48),
    };
    let mut sim = build_cross_segment_counting(Protocol::P5, &cfg);
    let report = run_segmented(&mut sim, "p5 across 2 segments", 2, RunLimits::default());
    assert!(report.outcome.finished, "{:?}", report.outcome);
    assert_eq!(report.metrics.additions, 128);
    assert!(
        report.cross_segment_bytes > 0,
        "the pair straddles the bridge"
    );
    assert!(report.cross_bytes_per_fault.is_finite());
    // Both parties' segments carried traffic, and the sum view agrees
    // with the per-segment counters.
    let total = sim.segment_stats(0).packets + sim.segment_stats(1).packets;
    assert_eq!(sim.net_stats().packets, total);
}

fn faulty_bridge_sim(drop: f64, duplicate: f64, target: u32) -> Simulation {
    use mether_net::{BridgeConfig, FabricConfig};
    use mether_workloads::build_counting;

    let cfg = CountingConfig {
        target,
        processes: 2,
        spin: SimDuration::from_micros(48),
    };
    let mut bridge = BridgeConfig::typical().with_seed(9);
    if drop > 0.0 {
        bridge = bridge.with_drop(drop);
    }
    if duplicate > 0.0 {
        bridge = bridge.with_duplicate(duplicate);
    }
    let sim_cfg = SimConfig {
        topology: Topology::fabric(FabricConfig::star(2).with_bridge(bridge)),
        ..SimConfig::paper(2)
    };
    build_counting(Protocol::P5, &cfg, sim_cfg)
}

#[test]
fn duplicating_bridge_is_harmless_to_the_protocol() {
    // Bridges may duplicate frames during topology flaps; Mether's
    // generation counters make replays no-ops, so a *permanently*
    // duplicating bridge must change cost only, never the count.
    let mut sim = faulty_bridge_sim(0.0, 1.0, 96);
    let outcome = sim.run(RunLimits::default());
    assert!(outcome.finished, "duplicates must not wedge the protocol");
    let m = sim.metrics("p5 duplicating bridge", outcome.finished, 2);
    assert_eq!(m.additions, 96, "every addition counted exactly once");
    let bridge = sim.bridge_stats().unwrap();
    assert!(bridge.duplicated > 0, "the knob fired");
}

#[test]
fn dropping_bridge_degrades_deterministically_not_catastrophically() {
    // The raw paper protocols have no retransmit timer — a lost transit
    // can stall a silently-waiting party (exactly the failure mode the
    // paper blames on "the comparatively low reliability of the
    // network"). What the simulator owes us under a dropping bridge is
    // bounded, *deterministic* degradation: the run ends (completion or
    // cap), drops are attributed to the bridge, and two identical runs
    // agree bit for bit.
    let limits = RunLimits {
        max_sim_time: SimDuration::from_secs(60),
        ..RunLimits::default()
    };
    let digest = |sim: &mut Simulation| {
        let outcome = sim.run(limits);
        let m = sim.metrics("p5 dropping bridge", outcome.finished, 2);
        let b = sim.bridge_stats().unwrap();
        (outcome, m.additions, m.net, b.dropped, b.forwarded)
    };
    let mut a = faulty_bridge_sim(0.25, 0.0, 96);
    let mut b = faulty_bridge_sim(0.25, 0.0, 96);
    let da = digest(&mut a);
    let db = digest(&mut b);
    assert_eq!(da, db, "deterministic under bridge loss");
    let (outcome, _, _, dropped, _) = da;
    assert!(dropped > 0, "the drop knob fired");
    // The run terminated — either the protocol powered through or the
    // cap tripped; both are legal, wedging the event loop is not.
    assert!(outcome.events > 0);
}

#[test]
fn bridge_queue_tail_drops_surface_in_protocol_metrics() {
    // A slow, 1-frame bridge device between a broadcast-happy publisher
    // and a subscribed remote segment: purge broadcasts arrive every
    // ~15 ms while the store-and-forward service takes 100 ms, so the
    // queue tail-drops most of them — and those drops must surface in
    // `ProtocolMetrics.bridge` (the fabric-wide sum), not sit invisible
    // in the per-device counters.
    use mether_core::PageId;
    use mether_net::{BridgeConfig, BridgeStats};
    use mether_workloads::Publisher;

    let bridge = BridgeConfig::typical()
        .with_forward_delay(SimDuration::from_millis(100))
        .with_queue_frames(1);
    let mut sim = Simulation::new(SimConfig {
        topology: Topology::fabric(FabricConfig::star(2).with_bridge(bridge)),
        ..SimConfig::paper(4)
    });
    let page = PageId::new(0);
    sim.create_owned(0, page);
    sim.subscribe_segment(page, 1);
    sim.add_process(0, Box::new(Publisher::new(page, 64)));
    let outcome = sim.run(RunLimits::default());
    assert!(outcome.finished);
    let m = sim.metrics("slow 1-frame bridge", outcome.finished, 1);
    assert!(
        m.bridge.queue_drops > 0,
        "the 1-frame queue tail-dropped: {:?}",
        m.bridge
    );
    assert_eq!(
        m.bridge,
        sim.bridge_stats().unwrap(),
        "metrics surface the fabric counters"
    );
    assert_eq!(
        m.bridge,
        BridgeStats::sum(m.bridge_devices.iter().copied()),
        "the fabric-wide row is the per-device sum"
    );
    // The drops are real: the subscribed segment heard fewer transits
    // than the publisher broadcast.
    assert!(
        sim.segment_stats(1).packets < sim.segment_stats(0).packets,
        "tail-dropped frames never reached segment 1"
    );
    assert!(
        sim.segment_stats(0).packets - sim.segment_stats(1).packets >= m.bridge.queue_drops,
        "every accounted tail-drop is a transit segment 1 never heard \
         (the remainder is the copy still in flight when the run ended)"
    );
}

// ---------------------------------------------------------------------
// Delivery-mode equivalence through the masked (Subset) fan-out.
// ---------------------------------------------------------------------

fn segmented_run_digest(mode: DeliveryMode) -> String {
    let cfg = CountingConfig {
        target: 96,
        processes: 2,
        spin: SimDuration::from_micros(48),
    };
    let mut sim = build_cross_segment_counting(Protocol::P5, &cfg);
    sim.set_delivery_mode(mode);
    let outcome = sim.run(RunLimits::default());
    let m = sim.metrics("p5", outcome.finished, 2);
    format!(
        "finished={} wall={} net={:?} heard={:?} ctx={} additions={}",
        m.finished,
        m.wall.as_nanos(),
        m.net,
        (0..sim.host_count())
            .map(|h| sim.host(h).frames_heard)
            .collect::<Vec<_>>(),
        m.ctx_switches,
        m.additions,
    )
}

#[test]
fn segmented_delivery_modes_agree() {
    // The compat schedule expands a Subset mask into One events in the
    // same ascending order the per-transit fan-out walks — outcomes must
    // be identical through the bridge too.
    assert_eq!(
        segmented_run_digest(DeliveryMode::PerTransit),
        segmented_run_digest(DeliveryMode::PerHostCompat)
    );
}

// ---------------------------------------------------------------------
// HostMask / Recipients properties: iteration order, dedup against
// AllExcept, and the round-trip through a Deliver fan-out.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn prop_hostmask_iterates_sorted_and_deduped(xs in proptest::collection::vec(0usize..128, 0..48)) {
        let mask: HostMask = xs.iter().copied().collect();
        let got: Vec<usize> = mask.iter().collect();
        let mut expect = xs.clone();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn prop_subset_of_all_except_mask_equals_all_except(n in 2usize..64, sender_raw in 0usize..64) {
        let sender = sender_raw % n;
        // The two spellings of "everyone on this n-host segment except
        // the sender" resolve to the same recipient set…
        let all_except = Recipients::AllExcept(sender).to_mask(n);
        let subset = Recipients::Subset(HostMask::all_except(n, sender)).to_mask(n);
        prop_assert_eq!(all_except, subset);
        // …and the set never contains the sender or an off-network host.
        prop_assert!(!all_except.contains(sender));
        prop_assert_eq!(all_except.len(), n - 1);
        prop_assert!(all_except.iter().all(|h| h < n));
    }

    #[test]
    fn prop_subset_mask_clips_to_deployment(xs in proptest::collection::vec(0usize..128, 0..48), n in 1usize..128) {
        let mask: HostMask = xs.iter().copied().collect();
        let clipped = Recipients::Subset(mask).to_mask(n);
        let expect: Vec<usize> = {
            let mut v: Vec<usize> = xs.iter().copied().filter(|&h| h < n).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        prop_assert_eq!(clipped.iter().collect::<Vec<_>>(), expect);
    }
}

/// The round-trip through `Deliver`: a Subset-addressed transit reaches
/// exactly the masked hosts, in mask order, once each. Driven through a
/// real segmented run (the publisher's purge broadcasts on segment 0)
/// rather than a synthetic heap, so the property covers the scheduler,
/// the heap, and the fan-out together.
#[test]
fn subset_deliver_round_trip_reaches_exactly_the_masked_hosts() {
    for (segments, hosts_per_segment) in [(2, 3), (3, 2), (4, 2)] {
        let mut sim = build_segmented_publisher(segments, hosts_per_segment, 16);
        let outcome = sim.run(RunLimits::default());
        assert!(outcome.finished);
        let transits = sim.segment_stats(0).packets;
        assert!(transits >= 16);
        for h in 0..sim.host_count() {
            let heard = sim.host(h).frames_heard;
            if h == 0 {
                assert_eq!(heard, 0, "the sender never hears its own frames");
            } else if sim.segment_of(h) == 0 {
                assert_eq!(
                    heard, transits,
                    "segment-0 host {h} heard every transit once"
                );
            } else {
                assert_eq!(heard, 0, "off-segment host {h} heard nothing");
            }
        }
    }
}
