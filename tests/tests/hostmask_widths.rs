//! Property tests for the variable-width `HostMask` across the widths
//! that matter: 1 (degenerate), 128 (the old `u128` ceiling), 129 (the
//! first spilled index), and 1024 (the 16×64 scale deployment).
//!
//! Three contracts are pinned:
//!
//! * **set-algebra laws** — union / intersection / difference /
//!   symmetric difference / insert / remove / iteration agree with a
//!   reference `BTreeSet` at every width, on either side of the
//!   inline-to-spilled representation boundary;
//! * **wire round-trip** — a mask crosses the codec inside a
//!   [`Packet::BridgePdu`] device view (`word_count:u16` + big-endian
//!   words, trailing zero words trimmed) and comes back equal, with
//!   `encoded_len` matching the bytes actually produced;
//! * **`u128` equivalence** — below 128 hosts the mask is
//!   bit-for-bit the `u128` it replaced: every operation matches the
//!   corresponding bitwise op through `bits`/`from_bits`.

use mether_core::{DeviceView, HostId, HostMask, Packet};
use proptest::prelude::*;
use std::collections::BTreeSet;

const WIDTHS: [usize; 4] = [1, 128, 129, 1024];

/// Folds raw draws into members below `WIDTHS[wi]` — the vendored
/// proptest has no `prop_flat_map`, so width-dependent membership is
/// derived in the test body instead.
fn members(wi: usize, raw: &[usize]) -> Vec<usize> {
    raw.iter().map(|&x| x % WIDTHS[wi]).collect()
}

fn mask_of(xs: &[usize]) -> HostMask {
    xs.iter().copied().collect()
}

fn set_of(xs: &[usize]) -> BTreeSet<usize> {
    xs.iter().copied().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn prop_algebra_matches_btreeset_at_every_width(
        wi in 0usize..WIDTHS.len(),
        raw_a in proptest::collection::vec(0usize..1024, 0..48),
        raw_b in proptest::collection::vec(0usize..1024, 0..48),
    ) {
        let width = WIDTHS[wi];
        let (xs, ys) = (members(wi, &raw_a), members(wi, &raw_b));
        let (a, b) = (mask_of(&xs), mask_of(&ys));
        let (sa, sb) = (set_of(&xs), set_of(&ys));
        prop_assert_eq!(
            a.union(&b).iter().collect::<Vec<_>>(),
            sa.union(&sb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            a.intersection(&b).iter().collect::<Vec<_>>(),
            sa.intersection(&sb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            a.difference(&b).iter().collect::<Vec<_>>(),
            sa.difference(&sb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            a.symmetric_difference(&b).iter().collect::<Vec<_>>(),
            sa.symmetric_difference(&sb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(a.len(), sa.len());
        for &x in &xs {
            prop_assert!(a.contains(x));
        }
        prop_assert!(!a.contains(width + 1), "nothing past the width");
        // Words round-trip at any width, trimmed or not.
        prop_assert_eq!(HostMask::from_words(a.words()), a.clone());
    }

    #[test]
    fn prop_insert_remove_track_the_reference(
        wi in 0usize..WIDTHS.len(),
        raw in proptest::collection::vec(0usize..1024, 0..48),
        toggle_seed in any::<u64>(),
    ) {
        let xs = members(wi, &raw);
        let mut m = HostMask::EMPTY;
        let mut s = BTreeSet::new();
        // Interleave inserts of the members with removes of earlier
        // ones, crossing the spill boundary both ways when width > 128.
        for (i, &x) in xs.iter().enumerate() {
            m.insert(x);
            s.insert(x);
            if toggle_seed.rotate_left(i as u32) & 1 == 1 {
                if let Some(&y) = s.iter().next() {
                    m.remove(y);
                    s.remove(&y);
                }
            }
            prop_assert_eq!(m.len(), s.len());
        }
        prop_assert_eq!(
            m.iter().collect::<Vec<_>>(),
            s.iter().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn prop_masks_round_trip_the_wire_in_bridge_pdus(
        wi in 0usize..WIDTHS.len(),
        raw_a in proptest::collection::vec(0usize..1024, 0..48),
        raw_b in proptest::collection::vec(0usize..1024, 0..48),
        version in any::<u64>(),
        alive in any::<bool>(),
    ) {
        let p = Packet::BridgePdu {
            from: HostId(7),
            device: 3,
            views: vec![
                DeviceView { version, alive, ports: mask_of(&members(wi, &raw_a)) },
                DeviceView { version: version ^ 1, alive: !alive, ports: mask_of(&members(wi, &raw_b)) },
            ],
        };
        let enc = p.encode();
        prop_assert_eq!(enc.len(), p.encoded_len(), "advertised length is the real one");
        prop_assert_eq!(Packet::decode(&enc).unwrap(), p.clone());
        let frame = p.encode_vectored();
        prop_assert_eq!(Packet::decode_frame(&frame).unwrap(), p);
    }

    #[test]
    fn prop_below_128_the_mask_is_its_u128(
        xs in proptest::collection::vec(0usize..128, 0..48),
        ys in proptest::collection::vec(0usize..128, 0..48),
    ) {
        let (a, b) = (mask_of(&xs), mask_of(&ys));
        let (ba, bb) = (a.bits(), b.bits());
        let expect_bits = xs.iter().fold(0u128, |acc, &x| acc | (1 << x));
        prop_assert_eq!(ba, expect_bits);
        prop_assert_eq!(a.union(&b).bits(), ba | bb);
        prop_assert_eq!(a.intersection(&b).bits(), ba & bb);
        prop_assert_eq!(a.difference(&b).bits(), ba & !bb);
        prop_assert_eq!(a.symmetric_difference(&b).bits(), ba ^ bb);
        prop_assert_eq!(HostMask::from_bits(ba), a.clone());
        if let Some(&x) = xs.first() {
            prop_assert_eq!(a.without(x).bits(), ba & !(1 << x));
        }
    }
}

/// The representation boundary, pinned deterministically on top of the
/// properties: every width round-trips the wire inside a full-width
/// device view.
#[test]
fn spill_boundary_round_trips_the_wire() {
    for width in WIDTHS {
        let full = HostMask::all_below(width);
        let p = Packet::BridgePdu {
            from: HostId(1),
            device: 0,
            views: vec![DeviceView {
                version: 9,
                alive: true,
                ports: full.clone(),
            }],
        };
        let enc = p.encode();
        assert_eq!(enc.len(), p.encoded_len(), "width {width}");
        assert_eq!(Packet::decode(&enc).unwrap(), p, "width {width}");
        assert_eq!(full.len(), width);
    }
}
