//! The §6 claim: "The experimental results for Mether directly match the
//! analytical and simulation results for MemNet ... Finding the identical
//! 'best' protocol for Mether, a software DSM, and MemNet, a hardware
//! DSM, is surprising."
//!
//! We run the protocol shapes on both substrates and compare the
//! rankings.

use memnet::{run_counting as memnet_run, CountingParams, MemNetProtocol};
use mether_net::SimDuration;
use mether_sim::{RunLimits, SimConfig};
use mether_workloads::{run_counting, CountingConfig, Protocol};

fn mether(p: Protocol) -> mether_sim::ProtocolMetrics {
    let cfg = CountingConfig {
        target: 128,
        processes: 2,
        spin: SimDuration::from_micros(48),
    };
    let limits = match p {
        Protocol::P3 => RunLimits {
            max_sim_time: SimDuration::from_secs(19),
            max_events: 50_000_000,
        },
        _ => RunLimits::default(),
    };
    run_counting(p, &cfg, SimConfig::paper(2), limits)
}

#[test]
fn same_best_protocol_on_both_systems() {
    // Mether side: the paper's "best" is the all-axes compromise (host
    // load, network load, latency); wall time of the synchronisation
    // benchmark is the composite. Rank finishers by it.
    let mether_runs = [
        (Protocol::P1, mether(Protocol::P1)),
        (
            Protocol::P3Hysteresis(10_000),
            mether(Protocol::P3Hysteresis(10_000)),
        ),
        (Protocol::P5, mether(Protocol::P5)),
    ];
    let mether_best = mether_runs
        .iter()
        .filter(|(_, m)| m.finished)
        .min_by(|a, b| a.1.wall.cmp(&b.1.wall))
        .unwrap();
    assert_eq!(
        mether_best.0,
        Protocol::P5,
        "Mether's best is the final protocol"
    );

    // MemNet side: rank by ring messages per addition.
    let params = CountingParams::paper();
    let memnet_best = MemNetProtocol::all()
        .into_iter()
        .map(|p| memnet_run(p, &params))
        .filter(|r| r.finished)
        .min_by(|a, b| a.messages_per_addition.total_cmp(&b.messages_per_addition))
        .unwrap();
    assert_eq!(
        memnet_best.protocol,
        MemNetProtocol::OneWayUpdate,
        "MemNet's best is the write-update one-way shape"
    );
    // Both winners are the same shape: one-way links, stationary write
    // capability, passive readers.
}

#[test]
fn same_worst_shape_on_both_systems() {
    // Mether's worst is protocol 3 (flush/refetch on every loss); on
    // MemNet the same shape moves the most ring messages.
    let p3 = mether(Protocol::P3);
    assert!(!p3.finished, "P3 diverges on Mether");

    let params = CountingParams::paper();
    let worst = MemNetProtocol::all()
        .into_iter()
        .map(|p| memnet_run(p, &params))
        .max_by(|a, b| a.messages_per_addition.total_cmp(&b.messages_per_addition))
        .unwrap();
    assert_eq!(
        worst.protocol,
        MemNetProtocol::OneWayFlush { hysteresis: 1 },
        "flush-every-loss is MemNet's most expensive shape too"
    );
}

#[test]
fn regime_gap_is_four_orders_of_magnitude() {
    // "the latency can be up to 10^4 times higher than a conventional
    // memory bus" — Mether's best fault latency (~tens of ms) vs
    // MemNet's (~2 µs).
    let p5 = mether(Protocol::P5);
    let memnet = memnet_run(MemNetProtocol::OneWayUpdate, &CountingParams::paper());
    let ratio = p5.avg_latency.as_secs_f64() / (memnet.avg_miss_ns as f64 / 1e9);
    assert!(ratio > 1e3, "latency regimes differ by ≥3 orders: {ratio}");
}

#[test]
fn memnet_wall_times_are_milliseconds() {
    // Every MemNet protocol finishes 1024 additions in tens of ms; every
    // Mether protocol needs tens of seconds. Same program, same
    // protocols — four orders of magnitude of substrate.
    for p in MemNetProtocol::all() {
        let r = memnet_run(p, &CountingParams::paper());
        assert!(r.finished);
        assert!(r.wall_ns < 1_000_000_000, "{:?}: {} ns", p, r.wall_ns);
    }
}
