//! Property tests locking down the wire codec across both framings.
//!
//! The event-engine overhaul made the two-segment vectored frame
//! ([`Packet::encode_vectored`]) the production transmit path, with the
//! contiguous [`Packet::encode`] kept as a compatibility wrapper. These
//! tests pin the contract that makes that safe to rely on:
//!
//! * the two framings are **byte-identical** on the wire — concatenating
//!   the vectored segments yields exactly the contiguous datagram;
//! * any packet survives encode → decode round-trips through either
//!   framing, field-for-field and byte-for-byte;
//! * the vectored payload segment is a zero-copy view of the packet's
//!   own data buffer (no 8 KiB transmit copy);
//! * malformed, truncated, or bit-flipped frames never panic the decoder
//!   — they return `Err`, and the wire-thread policy of counting each
//!   failure in [`NetStats::decode_errors`] keeps the segment alive.

use bytes::Bytes;
use mether_core::{Generation, HostId, Packet, PageId, PageLength, Want, WireFrame};
use mether_net::NetStats;
use proptest::prelude::*;

const CASES: u32 = 256;

fn mk_request(from: u16, page: u32, short: bool, want: u8) -> Packet {
    Packet::PageRequest {
        from: HostId(from),
        page: PageId::new(page),
        length: if short {
            PageLength::Short
        } else {
            PageLength::Full
        },
        want: match want % 3 {
            0 => Want::ReadOnly,
            1 => Want::Consistent,
            _ => Want::Superset,
        },
    }
}

fn mk_data(
    from: u16,
    page: u32,
    short: bool,
    generation: u64,
    transfer: Option<u16>,
    data: Vec<u8>,
) -> Packet {
    Packet::PageData {
        from: HostId(from),
        page: PageId::new(page),
        length: if short {
            PageLength::Short
        } else {
            PageLength::Full
        },
        generation: Generation(generation),
        transfer_to: transfer.map(HostId),
        data: Bytes::from(data),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn prop_request_round_trips_in_both_framings(
        from in any::<u16>(),
        page in 0u32..mether_core::config::MAX_PAGES,
        short in any::<bool>(),
        want in any::<u8>(),
    ) {
        let p = mk_request(from, page, short, want);
        let enc = p.encode();
        prop_assert_eq!(Packet::decode(&enc).unwrap(), p.clone());
        let frame = p.encode_vectored();
        prop_assert!(frame.payload.is_empty(), "requests carry no payload segment");
        prop_assert_eq!(&frame.header[..], &enc[..]);
        prop_assert_eq!(Packet::decode_frame(&frame).unwrap(), p);
    }

    #[test]
    fn prop_data_round_trips_byte_identically_in_both_framings(
        from in any::<u16>(),
        page in 0u32..mether_core::config::MAX_PAGES,
        short in any::<bool>(),
        generation in any::<u64>(),
        transfer in proptest::option::of(any::<u16>()),
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let p = mk_data(from, page, short, generation, transfer, data);
        let enc = p.encode();
        let frame = p.encode_vectored();

        // Byte identity of the two framings.
        let mut cat = frame.header.to_vec();
        cat.extend_from_slice(&frame.payload);
        prop_assert_eq!(&cat[..], &enc[..]);
        prop_assert_eq!(frame.len(), p.encoded_len());

        // Round trips through either framing reproduce the packet.
        prop_assert_eq!(Packet::decode(&enc).unwrap(), p.clone());
        prop_assert_eq!(Packet::decode_frame(&frame).unwrap(), p.clone());
        // And a contiguous datagram presented as a frame decodes too.
        let flat = WireFrame { header: enc, payload: Bytes::new() };
        prop_assert_eq!(Packet::decode_frame(&flat).unwrap(), p);
    }

    #[test]
    fn prop_vectored_payload_shares_storage(
        len in 1usize..8192,
        fill in any::<u8>(),
    ) {
        let data = Bytes::from(vec![fill; len]);
        let p = Packet::PageData {
            from: HostId(1),
            page: PageId::new(0),
            length: PageLength::Full,
            generation: Generation(1),
            transfer_to: None,
            data: data.clone(),
        };
        let frame = p.encode_vectored();
        prop_assert!(
            frame.payload.shares_storage_with(&data),
            "transmit-side payload copy eliminated"
        );
        match Packet::decode_frame(&frame).unwrap() {
            Packet::PageData { data: d, .. } => prop_assert!(
                d.shares_storage_with(&data),
                "receive side adopts the same storage"
            ),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    #[test]
    fn prop_truncated_frames_err_and_count_not_panic(
        from in any::<u16>(),
        short in any::<bool>(),
        generation in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 0..96),
        cut_seed in any::<u64>(),
    ) {
        let p = mk_data(from, 0, short, generation, None, data);
        let enc = p.encode();
        // Any strict prefix must fail to decode with Err, never panic.
        // (The wire thread's accounting of such failures —
        // NetStats::decode_errors — is exercised for real against the
        // Lan in mether-net's `corrupt_frame_is_counted_and_dropped_not_fatal`;
        // here the property is the decoder's own behaviour.)
        let cut = (cut_seed % enc.len() as u64) as usize;
        let res = Packet::decode(&enc.slice(..cut));
        prop_assert!(res.is_err(), "cut at {} of {}", cut, enc.len());

        // Same for the vectored framing: truncate the header segment.
        let frame = p.encode_vectored();
        let hcut = (cut_seed % frame.header.len() as u64) as usize;
        let res = Packet::decode_frame(&WireFrame {
            header: frame.header.slice(..hcut),
            payload: frame.payload.clone(),
        });
        prop_assert!(res.is_err(), "header cut at {}", hcut);
    }

    #[test]
    fn prop_garbage_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..96),
        split_seed in any::<u64>(),
    ) {
        // Arbitrary bytes through the contiguous decoder...
        let b = Bytes::from(bytes.clone());
        let _ = Packet::decode(&b);
        // ...and through the frame decoder at an arbitrary segment split.
        let split = if b.is_empty() { 0 } else { (split_seed % b.len() as u64) as usize };
        let _ = Packet::decode_frame(&WireFrame {
            header: b.slice(..split),
            payload: b.slice(split..),
        });
        // Reaching here without a panic is the property.
    }

    #[test]
    fn prop_bit_flips_never_panic(
        from in any::<u16>(),
        generation in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 0..64),
        pos_seed in any::<u64>(),
        flip in 1u8..255,
    ) {
        let p = mk_data(from, 3, true, generation, Some(2), data);
        let mut enc = p.encode().to_vec();
        let pos = (pos_seed % enc.len() as u64) as usize;
        enc[pos] ^= flip;
        // A flipped frame may still parse (e.g. a payload or generation
        // bit); it must never panic, and if it fails it fails with Err.
        let _ = Packet::decode(&Bytes::from(enc));
    }
}

/// The counter side of the wire-thread policy: `record_decode_error`
/// accumulates one per bad frame and survives snapshot deltas. (The
/// policy itself — a corrupt frame on the real LAN incrementing the
/// counter, reaching no receiver, and leaving the segment alive — is
/// tested end to end in mether-net's
/// `corrupt_frame_is_counted_and_dropped_not_fatal`.)
#[test]
fn decode_error_counter_accumulates() {
    let mut stats = NetStats::new();
    for garbage in [
        Bytes::new(),
        Bytes::from(vec![0u8; 2]),
        Bytes::from(vec![0xffu8; 40]),
    ] {
        assert!(Packet::decode(&garbage).is_err());
        stats.record_decode_error();
    }
    assert_eq!(stats.decode_errors, 3);
    let snap = stats;
    stats.record_decode_error();
    assert_eq!(stats.delta(&snap).decode_errors, 1);
}
