//! The routed bridge fabric, pinned end to end.
//!
//! Four property/regression layers over `mether_net::bridge` and the
//! topologies in `mether_core::topology`:
//!
//! 1. **Next-hop derivation** (property tests): on arbitrary trees,
//!    hop-by-hop forwarding along the derived tables walks exactly the
//!    unique tree path between any two segments, and no device ever
//!    forwards a frame back out its incoming port.
//! 2. **Interest aging invariants** (property tests): whatever frames a
//!    device sees, the home port is never evicted and pins survive;
//!    after an eviction, fresh demand reinstates the entry.
//! 3. **Routed ≡ flooding**: holder-directed request routing must change
//!    *which wires carry requests* and nothing else — byte-identical
//!    outcomes on the 2-segment counting workloads at 3 lossy seeds
//!    (where the modes are structurally equivalent, pinning that the
//!    routed code path is exactly PR 3's in the base case), identical
//!    final page states and protocol outcomes on the 3-segment solver
//!    (where routing genuinely removes frames from uninvolved wires),
//!    and identical results from the threaded runtime.
//! 4. **Aging in anger**: a reader segment that stops touching a page
//!    stops receiving its transits — its snooped-frame count goes flat
//!    while an active reader's keeps climbing.
//!
//! Plus the placement pin: the automatic write-graph placement
//! reproduces the hand-placed solver byte for byte.

use mether_core::{BridgeTopology, HostMask, PageId, SegmentLayout};
use mether_net::{AgeHorizon, BridgePolicy, FabricConfig, RequestRouting, SimDuration, SimTime};
use mether_sim::{ProtocolMetrics, RunLimits, SimConfig, Simulation, Topology};
use mether_workloads::{
    build_counting, build_segmented_solver, build_segmented_solver_on, CountingConfig,
    PollingReader, Protocol, SolverConfig, SolverWorker,
};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Random trees for the routing properties come from
// `BridgeTopology::from_parents` (the parent-vector family: stars,
// chains, and everything between) — promoted into mether-core so the
// soak generator draws from the same family instead of duplicating it.
// ---------------------------------------------------------------------

fn tree_from_parents(parents: &[usize]) -> BridgeTopology {
    BridgeTopology::from_parents(parents)
}

proptest! {
    /// Every segment pair routes along the unique tree path: the
    /// next-hop walk ends at the destination, never revisits a segment,
    /// never immediately backtracks, and its length is the same in both
    /// directions (it is the same path).
    #[test]
    fn prop_next_hop_walk_is_the_unique_tree_path(
        parents in proptest::collection::vec(0usize..64, 1..12)
    ) {
        let t = tree_from_parents(&parents);
        let n = t.segments();
        for src in 0..n {
            for dst in 0..n {
                let path = t.path(src, dst);
                if src == dst {
                    prop_assert!(path.is_empty());
                    continue;
                }
                prop_assert_eq!(path.last().unwrap().1, dst, "walk ends at dst");
                let mut visited = vec![src];
                let mut here = src;
                for &(bridge, out) in &path {
                    // The hop leaves through a real port of the bridge,
                    // never the one it came in on.
                    prop_assert!(t.ports(bridge).contains(&here));
                    prop_assert!(t.ports(bridge).contains(&out));
                    prop_assert_ne!(out, here, "no hop forwards back toward the sender");
                    prop_assert!(!visited.contains(&out), "tree paths are simple");
                    visited.push(out);
                    here = out;
                }
                // Symmetric: the reverse walk is the same path backwards.
                let back = t.path(dst, src);
                prop_assert_eq!(back.len(), path.len());
                let fwd_bridges: Vec<usize> = path.iter().map(|&(b, _)| b).collect();
                let mut back_bridges: Vec<usize> = back.iter().map(|&(b, _)| b).collect();
                back_bridges.reverse();
                prop_assert_eq!(fwd_bridges, back_bridges);
            }
        }
    }

    /// A device's forwarding mask never contains the incoming port and
    /// never leaves its own ports, for any frame kind, routing mode, and
    /// holder/interest state reached by an arbitrary frame history.
    #[test]
    fn prop_targets_stay_on_ports_and_never_reverse(
        parents in proptest::collection::vec(0usize..8, 1..6),
        history in proptest::collection::vec((0usize..6, 0u8..3, 0usize..48, 0usize..2), 0..24),
        routed in any::<bool>(),
    ) {
        use bytes::Bytes;
        use mether_core::{Generation, HostId, Packet, PageLength, Want};

        let t = Arc::new(tree_from_parents(&parents));
        let n = t.segments();
        let layout = SegmentLayout::new(n * 2, n).unwrap();
        let routing = if routed { RequestRouting::HolderDirected } else { RequestRouting::Flood };
        let mut policies: Vec<BridgePolicy> = (0..t.bridges())
            .map(|d| BridgePolicy::new(
                layout,
                Arc::clone(&t),
                d,
                mether_core::PageHomePolicy::Striped,
                routing,
                AgeHorizon::Transits(3),
            ))
            .collect();
        let now = SimTime::ZERO;
        for (page, kind, host, transfer) in history {
            let page = PageId::new((page % 4) as u32);
            let from = HostId((host % (n * 2)) as u16);
            let pkt = match kind {
                0 => Packet::PageRequest { from, page, length: PageLength::Short, want: Want::ReadOnly },
                1 => Packet::PageData {
                    from, page, length: PageLength::Short, generation: Generation(1),
                    transfer_to: None, data: Bytes::from(vec![0u8; 32]),
                },
                _ => Packet::PageData {
                    from, page, length: PageLength::Short, generation: Generation(2),
                    transfer_to: Some(HostId((transfer * (n * 2 - 1)) as u16)),
                    data: Bytes::from(vec![0u8; 32]),
                },
            };
            // Offer the frame to every device on the sender's segment,
            // as the fabric would.
            let seg = layout.segment_of(from.0 as usize);
            for (d, policy) in policies.iter_mut().enumerate() {
                if !t.ports(d).contains(&seg) {
                    continue;
                }
                let ports: HostMask = t.ports(d).iter().copied().collect();
                let targets = policy.route(&pkt, seg, now);
                prop_assert!(!targets.contains(seg), "never out the incoming port");
                prop_assert!(targets.intersection(&ports) == targets, "only real ports");
            }
        }
    }

    /// Aging invariants under arbitrary histories: the home port is in
    /// the interest mask after every step, pins never disappear, and a
    /// request on an evicted port reinstates it immediately.
    /// (Horizon 0 is excluded from the reinstatement leg: it means "an
    /// entry expires at the device's next forwarded transit", so the
    /// reinstating request's own forward already retires it — the
    /// home/pin invariants still hold there and are covered by the
    /// `home_and_pins_never_age` unit test.)
    #[test]
    fn prop_aging_never_evicts_home_or_pins_and_reuse_reinstates(
        horizon in 1u64..6,
        pin_seg in 0usize..4,
        evts in proptest::collection::vec((0usize..4, 0usize..4, 0u8..2), 1..32),
    ) {
        use bytes::Bytes;
        use mether_core::{Generation, HostId, Packet, PageLength, Want};

        let layout = SegmentLayout::new(8, 4).unwrap();
        let mut p = BridgePolicy::new(
            layout,
            Arc::new(BridgeTopology::star(4)),
            0,
            mether_core::PageHomePolicy::Striped,
            RequestRouting::Flood,
            AgeHorizon::Transits(horizon),
        );
        let page = PageId::new(0); // homed on segment 0
        p.subscribe(page, pin_seg);
        let now = SimTime::ZERO;
        for (seg, from_seg, kind) in evts {
            let from = HostId((from_seg * 2) as u16);
            let pkt = if kind == 0 {
                Packet::PageRequest { from, page, length: PageLength::Short, want: Want::ReadOnly }
            } else {
                Packet::PageData {
                    from, page, length: PageLength::Short, generation: Generation(1),
                    transfer_to: None, data: Bytes::from(vec![0u8; 32]),
                }
            };
            let _ = p.route(&pkt, seg, now);
            let interest = p.interest(page, now);
            prop_assert!(interest.contains(0), "home port never evicted");
            prop_assert!(interest.contains(pin_seg), "pins never evicted");
        }
        // Age everything learned out (each forwarded transit ticks the
        // clock; home keeps every frame forwardable), then reinstate.
        let data = Packet::PageData {
            from: HostId(2), page, length: PageLength::Short,
            generation: Generation(1), transfer_to: None,
            data: Bytes::from(vec![0u8; 32]),
        };
        for _ in 0..=(horizon + 1) {
            let _ = p.route(&data, 1, now);
        }
        let req = Packet::PageRequest {
            from: HostId(4), page, length: PageLength::Short, want: Want::ReadOnly,
        };
        let _ = p.route(&req, 2, now);
        prop_assert!(
            p.interest(page, now).contains(2),
            "fresh demand reinstates an aged-out port"
        );
    }
}

// ---------------------------------------------------------------------
// Routed ≡ flooding, discrete-event simulator.
// ---------------------------------------------------------------------

const SEEDS: [u64; 3] = [1, 7, 42];

/// FNV-1a over a byte slice — cheap, deterministic content digest.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Every host's final page-table state, flattened to a comparable
/// string: page bytes, generations, holders, locks — the protocol's
/// externally observable memory.
fn page_state_digest(sim: &Simulation) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for h in 0..sim.host_count() {
        let host = sim.host(h);
        writeln!(out, "host{h}:").unwrap();
        for page in host.table.tracked_pages() {
            let buf = host.table.page_buf(page);
            writeln!(
                out,
                "  page{}: gen={:?} holder={} locked={} valid={:?} digest={:016x}",
                page.index(),
                host.table.generation(page),
                host.table.is_consistent_holder(page),
                host.table.is_locked(page),
                buf.map(|b| b.valid_len()),
                buf.map_or(0, |b| fnv(b.as_slice())),
            )
            .unwrap();
        }
    }
    out
}

/// The full fingerprint: page states plus the whole metrics row
/// (timing, traffic, frames heard per host).
fn full_fingerprint(sim: &Simulation, m: &ProtocolMetrics) -> String {
    use std::fmt::Write;
    let mut out = page_state_digest(sim);
    for h in 0..sim.host_count() {
        writeln!(out, "heard{h}={}", sim.host(h).frames_heard).unwrap();
    }
    writeln!(
        out,
        "metrics: finished={} wall={} net={:?} ctx={} losses={} wins={} additions={}",
        m.finished,
        m.wall.as_nanos(),
        m.net,
        m.ctx_switches,
        m.losses,
        m.wins,
        m.additions,
    )
    .unwrap();
    out
}

fn counting_run(
    protocol: Protocol,
    seed: u64,
    routing: RequestRouting,
) -> (Simulation, ProtocolMetrics) {
    let cfg = CountingConfig {
        target: 192,
        processes: 2,
        spin: SimDuration::from_micros(48),
    };
    let mut sim_cfg = SimConfig::paper(2);
    sim_cfg.ether = sim_cfg.ether.with_loss(0.02, seed);
    sim_cfg.topology = Topology::fabric(FabricConfig::star(2).with_routing(routing));
    let mut sim = build_counting(protocol, &cfg, sim_cfg);
    let limits = RunLimits {
        max_sim_time: SimDuration::from_secs(120),
        ..RunLimits::default()
    };
    let outcome = sim.run(limits);
    let m = sim.metrics(&protocol.label(), outcome.finished, protocol.space_pages());
    (sim, m)
}

#[test]
fn routed_star_is_byte_identical_to_flooding_on_two_segments_at_lossy_seeds() {
    // On a 2-segment star the holder-directed path must degenerate to
    // exactly PR 3's flooding (one other port — belief or no belief,
    // the frame goes there, or nowhere precisely when the holder's own
    // segment already heard it and nobody else exists to tell). The
    // byte-identical pin covers every packet kind, the lossy ether, and
    // both counting protocols at 3 seeds: the routed code path IS the
    // old bridge in the base case.
    for protocol in [Protocol::P1, Protocol::P5] {
        for seed in SEEDS {
            let (flood_sim, flood_m) = counting_run(protocol, seed, RequestRouting::Flood);
            let (routed_sim, routed_m) =
                counting_run(protocol, seed, RequestRouting::HolderDirected);
            assert_eq!(
                full_fingerprint(&flood_sim, &flood_m),
                full_fingerprint(&routed_sim, &routed_m),
                "{protocol:?} seed {seed}: routed diverged from flooding on 2 segments"
            );
        }
    }
}

fn solver_run(routing: RequestRouting, seed: u64) -> (Simulation, ProtocolMetrics) {
    // 3 ranks on 3 segments of a star: flooding sprays every request
    // over both remote segments, holder-directed walks it to the
    // holder's one. Lossless ether so both runs are deterministic; the
    // bridge seed exercises distinct fault-injection RNG streams
    // (no-ops at zero probability, pinning that the streams do not
    // perturb routing).
    const RANKS: usize = 3;
    let cfg = SolverConfig {
        iterations: 6,
        work_per_iteration: SimDuration::from_millis(20),
    };
    let mut sim_cfg = SimConfig::paper(RANKS);
    let fabric = FabricConfig::star(RANKS)
        .with_routing(routing)
        .with_bridge(mether_net::BridgeConfig::typical().with_seed(seed));
    sim_cfg.topology = Topology::fabric(fabric);
    let mut sim = Simulation::new(sim_cfg);
    for rank in 0..RANKS {
        sim.create_owned(rank, PageId::new(rank as u32));
        sim.add_process(rank, Box::new(SolverWorker::new(cfg, rank, RANKS)));
    }
    let outcome = sim.run(RunLimits::default());
    let m = sim.metrics("solver", outcome.finished, RANKS as u32);
    assert!(outcome.finished, "{outcome:?}");
    (sim, m)
}

#[test]
fn routed_solver_matches_flooding_page_states_and_outcomes() {
    // Beyond 2 segments the wire traffic legitimately differs — that is
    // the whole point — but the protocol must not notice: identical
    // final page states (contents, generations, holders) and identical
    // protocol-level outcomes on every rank.
    for seed in SEEDS {
        let (flood_sim, flood_m) = solver_run(RequestRouting::Flood, seed);
        let (routed_sim, routed_m) = solver_run(RequestRouting::HolderDirected, seed);
        assert_eq!(
            page_state_digest(&flood_sim),
            page_state_digest(&routed_sim),
            "seed {seed}: routed solver diverged in page state"
        );
        assert_eq!(flood_m.additions, routed_m.additions);
        assert_eq!(flood_m.finished, routed_m.finished);
        // And the routed run put no MORE request frames on the fabric.
        assert!(routed_m.bridge.req_forwarded <= flood_m.bridge.req_forwarded);
    }
}

// ---------------------------------------------------------------------
// Routed ≡ flooding, threaded runtime.
// ---------------------------------------------------------------------

#[test]
fn runtime_routed_star_serves_every_value_flooding_serves() {
    use mether_core::{MapMode, PageLength, VAddr, View};
    use mether_runtime::{Cluster, ClusterConfig};

    // The threaded runtime is asynchronous: a forwarded refresh from an
    // earlier round can land just after a reader's purge, so individual
    // reads may legitimately observe a recent-but-stale inconsistent
    // copy. The cross-mode guarantee is *eventual freshness*: under
    // either routing mode, every written value becomes visible to every
    // remote reader — never a value from the future, never a wedge.
    let run = |routing: RequestRouting| {
        let fabric = FabricConfig::star(3).with_routing(routing);
        let mut c = Cluster::new(ClusterConfig::fabric(6, fabric)).unwrap();
        let page = PageId::new(0);
        c.node(0).create_owned(page);
        let addr = VAddr::new(page, View::short_demand(), 0).unwrap();
        for i in 1..=8u32 {
            c.node(0).write_u32(addr, i).unwrap();
            for reader in [2usize, 4] {
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
                loop {
                    c.node(reader)
                        .purge(page, MapMode::ReadOnly, PageLength::Short)
                        .unwrap();
                    let v = c.node(reader).read_u32(addr, MapMode::ReadOnly).unwrap();
                    assert!(
                        v <= i,
                        "reader {reader} saw a value from the future: {v} > {i}"
                    );
                    if v == i {
                        break;
                    }
                    assert!(
                        std::time::Instant::now() < deadline,
                        "reader {reader} never saw {i} under {routing:?}"
                    );
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
        }
        c.shutdown();
    };
    run(RequestRouting::Flood);
    run(RequestRouting::HolderDirected);
}

// ---------------------------------------------------------------------
// Aging in anger: an idle segment's snoop count goes flat.
// ---------------------------------------------------------------------

fn aging_run(aging: AgeHorizon) -> (u64, u64) {
    // Star over 3 segments, one host each: the holder of page 0 sits on
    // segment 0 (host 0, no process — the server answers requests
    // without application help). Reader A (segment 1) polls 40 rounds;
    // reader B (segment 2) polls 5 rounds and goes idle. Requests are
    // holder-directed so the only traffic reaching B's segment is
    // interest-driven data — the component aging governs (flooded
    // requests would reach every segment regardless of interest).
    // Returns (frames A's host heard, frames B's host heard).
    let mut sim = Simulation::new(SimConfig {
        topology: Topology::fabric(
            FabricConfig::star(3)
                .with_routing(RequestRouting::HolderDirected)
                .with_aging(aging),
        ),
        ..SimConfig::paper(3)
    });
    let page = PageId::new(0);
    sim.create_owned(0, page);
    let pace = SimDuration::from_millis(4);
    sim.add_process(
        1,
        Box::new(PollingReader::new(page, 40, pace, SimDuration::ZERO)),
    );
    sim.add_process(
        2,
        Box::new(PollingReader::new(
            page,
            5,
            pace + SimDuration::from_millis(1),
            SimDuration::from_millis(2),
        )),
    );
    let outcome = sim.run(RunLimits::default());
    assert!(outcome.finished, "{outcome:?}");
    (sim.host(1).frames_heard, sim.host(2).frames_heard)
}

#[test]
fn idle_segment_stops_hearing_transits_under_aging() {
    let (sticky_a, sticky_b) = aging_run(AgeHorizon::Sticky);
    let (aged_a, aged_b) = aging_run(AgeHorizon::Transits(8));
    eprintln!("frames heard: sticky A={sticky_a} B={sticky_b}, aged A={aged_a} B={aged_b}");
    // Sticky (PR 3): B's segment stays interested forever — it keeps
    // hearing A's replies long after its own last fault.
    assert!(
        sticky_b > 25,
        "sticky interest keeps feeding the idle segment ({sticky_b} frames)"
    );
    // Aged: B's interest evicts within the horizon after its 5th round;
    // its snooped-frame count goes flat while A keeps polling.
    assert!(
        aged_b <= 5 + 8 + 4,
        "idle segment must stop hearing transits (heard {aged_b})"
    );
    assert!(aged_b < sticky_b / 2, "the flat line is a real change");
    // The active reader still hears everything it needs — aging never
    // touches live demand.
    assert!(aged_a >= 40, "active reader still fed ({aged_a} frames)");
}

// ---------------------------------------------------------------------
// Automatic placement ≡ hand placement.
// ---------------------------------------------------------------------

#[test]
fn write_graph_placement_reproduces_the_hand_placed_solver() {
    // The hand-placed segmented solver aligned rank pages with striped
    // homes by construction; the write-graph placement must derive the
    // same homes and therefore the byte-identical run.
    let cfg = SolverConfig {
        iterations: 5,
        work_per_iteration: SimDuration::from_millis(20),
    };
    let mut hand = build_segmented_solver(3, 2, cfg);
    let mut auto = build_segmented_solver_on(FabricConfig::star(3), 2, cfg);
    let hand_out = hand.run(RunLimits::default());
    let auto_out = auto.run(RunLimits::default());
    assert!(hand_out.finished && auto_out.finished);
    let hand_m = hand.metrics("solver hand", hand_out.finished, 3);
    let auto_m = auto.metrics("solver auto", auto_out.finished, 3);
    assert_eq!(
        full_fingerprint(&hand, &hand_m),
        full_fingerprint(&auto, &auto_m),
        "derived homes must reproduce the hand placement exactly"
    );
}

// ---------------------------------------------------------------------
// The spanning-tree election on random connected graphs (PR 5).
// ---------------------------------------------------------------------

/// A random connected graph: a random tree (parents) plus `extra`
/// random two-port tie bridges — every wiring this produces is
/// connected, and most have cycles.
fn graph_from(parents: &[usize], extra: &[(usize, usize)]) -> BridgeTopology {
    let tree = tree_from_parents(parents);
    let n = tree.segments();
    let ties: Vec<Vec<usize>> = extra
        .iter()
        .map(|&(a, b)| (a % n, b % n))
        .filter(|&(a, b)| a != b)
        .map(|(a, b)| vec![a, b])
        .collect();
    tree.add_redundant_links(ties).expect("ties stay connected")
}

/// Forwarding edges of an elected tree, as (bridge, segment) pairs.
fn forwarding_edges(t: &BridgeTopology, a: &mether_core::ActiveTree) -> Vec<(usize, usize)> {
    (0..t.bridges())
        .flat_map(|b| a.forwarding(b).iter().map(move |s| (b, s)))
        .collect()
}

/// Is every segment reachable from segment `start` over `edges`?
fn segments_connected(t: &BridgeTopology, edges: &[(usize, usize)], start: usize) -> bool {
    let mut seg_seen = vec![false; t.segments()];
    let mut br_seen = vec![false; t.bridges()];
    seg_seen[start] = true;
    let mut frontier = vec![start];
    while let Some(s) = frontier.pop() {
        for &(b, es) in edges {
            if es == s && !br_seen[b] {
                br_seen[b] = true;
                for &(b2, es2) in edges {
                    if b2 == b && !seg_seen[es2] {
                        seg_seen[es2] = true;
                        frontier.push(es2);
                    }
                }
            }
        }
    }
    seg_seen.iter().all(|&x| x)
}

proptest! {
    /// On any connected graph with everything alive, the election
    /// yields a spanning tree: the Forwarding edges connect every
    /// segment, count exactly |vertices| − 1 (no cycles), and every
    /// observer derives the same tree with full next-hop coverage.
    #[test]
    fn prop_election_yields_a_spanning_tree_on_connected_graphs(
        parents in proptest::collection::vec(0usize..64, 1..10),
        extra in proptest::collection::vec((0usize..16, 0usize..16), 0..5),
    ) {
        let t = graph_from(&parents, &extra);
        let views = t.fresh_views();
        let reference = t.elect(&[], &views, 0);
        let edges = forwarding_edges(&t, &reference);
        // Tree arithmetic: segments + bridges − 1 edges, connected.
        prop_assert_eq!(edges.len(), t.segments() + t.bridges() - 1);
        prop_assert!(segments_connected(&t, &edges, 0));
        for observer in 0..t.bridges() {
            let a = t.elect(&[], &views, observer);
            prop_assert_eq!(&a, &reference, "observer {} disagrees", observer);
            for b in 0..t.bridges() {
                for dst in 0..t.segments() {
                    prop_assert!(a.next_hop(b, dst).is_some(), "unreachable {}->{}", b, dst);
                }
            }
        }
    }

    /// Killing any non-articulation bridge of a redundant graph leaves
    /// the fabric connected after re-election: the survivors' tree
    /// still spans every segment.
    #[test]
    fn prop_killing_non_articulation_bridges_keeps_the_fabric_connected(
        parents in proptest::collection::vec(0usize..64, 1..8),
        extra in proptest::collection::vec((0usize..16, 0usize..16), 1..5),
        victim_raw in 0usize..32,
    ) {
        let t = graph_from(&parents, &extra);
        let victim = victim_raw % t.bridges();
        // Physical connectivity without the victim (all ports of every
        // other bridge): skip articulation bridges — losing one *should*
        // partition the fabric.
        let phys: Vec<(usize, usize)> = (0..t.bridges())
            .filter(|&b| b != victim)
            .flat_map(|b| t.ports(b).iter().map(move |&s| (b, s)))
            .collect();
        prop_assume!(segments_connected(&t, &phys, 0));
        let mut views = t.fresh_views();
        views[victim].version += 1;
        views[victim].alive = false;
        // Any surviving observer elects a tree spanning all segments.
        let observer = (0..t.bridges()).find(|&b| b != victim).unwrap();
        let a = t.elect(&[], &views, observer);
        let edges = forwarding_edges(&t, &a);
        prop_assert!(a.forwarding(victim).is_empty(), "the dead forward nothing");
        prop_assert!(segments_connected(&t, &edges, 0),
            "survivors must span every segment");
        for dst in 0..t.segments() {
            prop_assert!(a.next_hop(observer, dst).is_some());
        }
    }

    /// On trees with uniform priorities the election reproduces the
    /// wiring: every port Forwarding, next hops equal to the tree-only
    /// tables — the base case that keeps `Static` election
    /// byte-identical to the PR 4 fabric.
    #[test]
    fn prop_tree_election_matches_static_tables(
        parents in proptest::collection::vec(0usize..64, 1..10),
    ) {
        let t = tree_from_parents(&parents);
        let a = t.elect(&[], &t.fresh_views(), 0);
        for b in 0..t.bridges() {
            let all: HostMask = t.ports(b).iter().copied().collect();
            prop_assert_eq!(a.forwarding(b), all);
            for dst in 0..t.segments() {
                prop_assert_eq!(a.next_hop(b, dst), Some(t.next_hop(b, dst)));
            }
        }
    }
}

// ---------------------------------------------------------------------
// PR 4's acceptance workload under LIVE election: same active tree,
// same ≥2× routed-vs-flooding request shrink (PR 5 acceptance).
// ---------------------------------------------------------------------

#[test]
fn live_election_reproduces_the_tree_and_keeps_the_routing_win() {
    use mether_net::ElectionMode;
    use mether_workloads::build_fabric_readers;

    const ROUNDS: u32 = 48;
    let run = |routing: RequestRouting| {
        let fabric = FabricConfig::tree(4, 2)
            .with_routing(routing)
            .with_election(ElectionMode::live());
        let mut sim = build_fabric_readers(fabric, 8, ROUNDS);
        let outcome = sim.run(RunLimits::default());
        assert!(outcome.finished, "{outcome:?}");
        let m = sim.metrics("readers 4x8 live", outcome.finished, 1);
        assert_eq!(
            m.fabric_reconvergences, 0,
            "an undisturbed live fabric never re-elects"
        );
        m
    };
    let flood = run(RequestRouting::Flood);
    let routed = run(RequestRouting::HolderDirected);
    // Identical protocol work across modes, even with hello traffic on
    // the wires.
    assert_eq!(flood.additions, routed.additions);
    assert!(flood.net.control_packets > 0, "hellos rode the wire");
    let (f, r) = (flood.bridge.req_forwarded, routed.bridge.req_forwarded);
    let ratio = f as f64 / r as f64;
    eprintln!(
        "live election, readers x{ROUNDS} on 4x8 tree: fabric-crossing requests \
         flood = {f}, holder-directed = {r}, ratio {ratio:.2}x"
    );
    assert!(
        ratio >= 2.0,
        "the PR 4 routing pin must survive live election (flood {f}, routed {r})"
    );
}

// ---------------------------------------------------------------------
// Holder-belief quality counters (PR 5 satellite).
// ---------------------------------------------------------------------

#[test]
fn belief_counters_surface_through_protocol_metrics() {
    use mether_workloads::build_fabric_readers;

    let fabric = FabricConfig::tree(4, 2).with_routing(RequestRouting::HolderDirected);
    let mut sim = build_fabric_readers(fabric, 8, 24);
    let outcome = sim.run(RunLimits::default());
    assert!(outcome.finished);
    let m = sim.metrics("readers", outcome.finished, 1);
    // The first request of each reader finds no belief (fallback
    // flood); the replies teach the holder direction and later rounds
    // route on it.
    assert!(
        m.bridge.belief_fallback_floods >= 1,
        "cold start floods: {:?}",
        m.bridge
    );
    assert!(
        m.bridge.belief_hits > m.bridge.belief_fallback_floods,
        "a holder-stable workload routes mostly on beliefs: {:?}",
        m.bridge
    );
    // The fabric-wide row is the per-device sum, belief counters
    // included.
    let summed = mether_net::BridgeStats::sum(m.bridge_devices.iter().copied());
    assert_eq!(m.bridge, summed);
    assert!(
        m.bridge_devices.iter().any(|d| d.belief_hits > 0),
        "per-device rows carry the counters"
    );
    // Flood mode never counts belief events.
    let fabric = FabricConfig::tree(4, 2).with_routing(RequestRouting::Flood);
    let mut flood_sim = build_fabric_readers(fabric, 8, 8);
    let fo = flood_sim.run(RunLimits::default());
    let fm = flood_sim.metrics("readers flood", fo.finished, 1);
    assert_eq!(fm.bridge.belief_hits, 0);
    assert_eq!(fm.bridge.belief_fallback_floods, 0);
}

// ---------------------------------------------------------------------
// Ring failover: kill the root, measure the stall (PR 5 acceptance).
// ---------------------------------------------------------------------

#[test]
fn ring_failover_reconverges_and_every_reader_sees_the_final_value() {
    use mether_workloads::{run_ring_failover, FailoverConfig};

    let cfg = FailoverConfig::ring_4x8();
    let (sim, report) = run_ring_failover(&cfg, RunLimits::default());
    eprintln!(
        "ring failover 4x8: finished={} wall={} reconvergences={} stall={:?} events={:?}",
        report.outcome.finished,
        report.metrics.wall,
        report.reconvergences,
        report.stall,
        report.metrics.fabric_events,
    );
    assert!(
        report.outcome.finished,
        "the workload must ride through the failure: {:?}",
        report.outcome
    );
    assert!(
        report.readers_saw_final,
        "every reader observes the final generation"
    );
    assert!(
        report.reconvergences >= 1,
        "the survivors re-elected around the dead root"
    );
    // The acceptance number: the reconvergence stall is measured and
    // finite — from the BridgeDown to the first cross-fabric PageData
    // forwarded by a re-elected device.
    let stall = report.stall.expect("stall measured");
    assert!(
        stall > SimDuration::ZERO && stall < SimDuration::from_secs(2),
        "stall {stall} out of range"
    );
    // The dead device forwarded nothing after its death: its counters
    // are frozen while the survivors kept forwarding.
    assert_eq!(report.metrics.fabric_events.len(), 1);
    assert!(sim.fabric_stall().is_some());
}

#[test]
fn ring_failover_with_revival_heals_the_short_path() {
    use mether_workloads::{run_ring_failover, FailoverConfig};

    let cfg = FailoverConfig {
        writes: 30,
        revive_at: Some(SimDuration::from_millis(220)),
        ..FailoverConfig::ring_4x8()
    };
    let (_sim, report) = run_ring_failover(&cfg, RunLimits::default());
    assert!(report.outcome.finished, "{:?}", report.outcome);
    assert!(report.readers_saw_final);
    assert_eq!(report.metrics.fabric_events.len(), 2, "down + up recorded");
    // The revival triggers a second wave of re-elections (the root
    // reclaims its tree).
    assert!(
        report.reconvergences >= 2,
        "reconvergences: {}",
        report.reconvergences
    );
}

// ---------------------------------------------------------------------
// The aging-policy sweep (PR 5 satellite).
// ---------------------------------------------------------------------

#[test]
fn age_horizon_sweep_locates_the_refetch_vs_filter_knee() {
    use mether_workloads::sweep_age_horizons;

    let gap = SimDuration::from_millis(600);
    let points = sweep_age_horizons(
        &[gap],
        &[
            AgeHorizon::Sticky,
            AgeHorizon::Transits(2),
            AgeHorizon::SimTime(SimDuration::from_millis(50)),
        ],
        RunLimits::default(),
    );
    assert_eq!(points.len(), 3);
    let sticky = &points[0];
    let transits = &points[1];
    let simtime = &points[2];
    for p in &points {
        eprintln!(
            "{}: idle_frames={} return_lag={} fresh={} requests={}",
            p.label, p.idle_frames, p.return_lag, p.fresh_return, p.requests_crossed
        );
    }
    // Sticky: the idle segment is fed through the whole gap — the copy
    // comes back fresh, at the price of snooping every broadcast.
    assert!(sticky.fresh_return, "sticky keeps the idle copy fresh");
    assert!(sticky.return_lag <= 1);
    // Aged out (both horizon kinds, far shorter than the gap): the
    // refreshes stop early — the reader returns stale and pays a
    // catch-up fetch, but its segment snooped far less.
    for aged in [transits, simtime] {
        assert!(
            !aged.fresh_return,
            "{}: a horizon far below the gap must go stale",
            aged.label
        );
        assert!(
            aged.return_lag >= 3,
            "{}: lag {} too small for a 600ms gap",
            aged.label,
            aged.return_lag
        );
        assert!(
            aged.idle_frames * 2 < sticky.idle_frames,
            "{}: aging must at least halve the idle segment's snoops \
             ({} vs sticky {})",
            aged.label,
            aged.idle_frames,
            sticky.idle_frames
        );
    }
}
