//! Open-loop traffic engine regressions: determinism of the seeded
//! arrival schedule (same seed ≡ same digest; serial ≡ worker lanes),
//! the measured serve-time reply-piggyback win on the hot home
//! segment, and the CI fault-latency SLO ceilings per topology class.
//!
//! The SLO ceilings are deliberately loose multiples of the measured
//! tails (they catch a mechanism regression — a lost optimization, a
//! serving path that stopped coalescing — not run-to-run noise; the
//! engine is deterministic, so any drift at all means the schedule
//! changed).

use mether_net::SimDuration;
use mether_workloads::{OpenLoopConfig, OpenLoopScenario};

#[test]
fn open_loop_same_seed_same_digest() {
    let a = OpenLoopScenario::tree_4x8(OpenLoopConfig::seeded(11)).run(None);
    let b = OpenLoopScenario::tree_4x8(OpenLoopConfig::seeded(11)).run(None);
    assert!(a.outcome.finished, "open-loop tree run hit its limits");
    assert_eq!(a, b, "one seed, two different runs");
    let c = OpenLoopScenario::tree_4x8(OpenLoopConfig::seeded(12)).run(None);
    assert_ne!(a.digest, c.digest, "digest insensitive to the seed");
}

#[test]
fn open_loop_serial_matches_worker_lanes() {
    // The whole report — digest, percentiles, queue high-water — must
    // be identical under the lane-parallel engine, piggybacking on or
    // off.
    for piggyback in [false, true] {
        let mut scenario = OpenLoopScenario::tree_4x8(OpenLoopConfig::seeded(23));
        if piggyback {
            scenario = scenario.with_piggyback();
        }
        let serial = scenario.run(None);
        let parallel = scenario.run(Some(2));
        assert!(serial.outcome.finished);
        assert_eq!(serial, parallel, "piggyback={piggyback}");
    }
}

#[test]
fn serve_time_piggyback_improves_hot_segment_tail() {
    // The measured optimization: on the skewed tree workload the hot
    // home's serve bursts accumulate identical queued requests, and
    // answering them with the in-flight reply must both fire (the
    // counter) and shorten the fault-latency tail.
    let base = OpenLoopScenario::tree_4x8(OpenLoopConfig::seeded(3)).run(None);
    let opt = OpenLoopScenario::tree_4x8(OpenLoopConfig::seeded(3))
        .with_piggyback()
        .run(None);
    assert!(base.outcome.finished && opt.outcome.finished);
    assert_eq!(base.piggybacked, 0, "piggybacking fired while disabled");
    assert!(
        opt.piggybacked > 0,
        "hot-segment serve bursts produced no piggybacked replies:\n{opt}"
    );
    assert!(
        opt.p999 < base.p999,
        "piggybacking did not improve the p999 tail:\nbase {base}\nopt  {opt}"
    );
    println!("base: {base}");
    println!("opt:  {opt}");
}

#[test]
fn openloop_slo_ci_tree() {
    let report = OpenLoopScenario::tree_4x8(OpenLoopConfig::seeded(1))
        .with_piggyback()
        .run(None);
    println!("{report}");
    assert!(report.outcome.finished, "tree SLO run hit its limits");
    assert!(report.faults > 0, "no demand faults measured");
    assert!(
        report.p999 <= SimDuration::from_millis(2_000),
        "tree p999 SLO breached: {report}"
    );
}

#[test]
#[ignore = "~10M events; seconds in release, minutes in debug — CI runs it release via --include-ignored"]
fn openloop_slo_ci_mesh() {
    let report = OpenLoopScenario::mesh_16x16(OpenLoopConfig::seeded(1))
        .with_piggyback()
        .run(None);
    println!("{report}");
    assert!(report.outcome.finished, "mesh SLO run hit its limits");
    assert!(report.faults > 0, "no demand faults measured");
    // Measured p999 at this seed: 98.6 ms (transit-dominated; the
    // loaded-but-stable pace keeps the hot home far from saturation).
    assert!(
        report.p999 <= SimDuration::from_millis(400),
        "mesh p999 SLO breached: {report}"
    );
}
