//! The paper's qualitative results, asserted end to end on the
//! discrete-event simulator at reduced scale (count to 128 instead of
//! 1024 so the suite stays fast; the orderings are scale-invariant).

use mether_net::SimDuration;
use mether_sim::{ProtocolMetrics, RunLimits, SimConfig};
use mether_workloads::{run_counting, CountingConfig, Protocol};

fn run(p: Protocol) -> ProtocolMetrics {
    let cfg = match p {
        Protocol::BaselineSingle => CountingConfig {
            target: 128,
            processes: 1,
            spin: SimDuration::from_micros(48),
        },
        _ => CountingConfig {
            target: 128,
            processes: 2,
            spin: SimDuration::from_micros(48),
        },
    };
    let limits = match p {
        Protocol::P3 => RunLimits {
            max_sim_time: SimDuration::from_secs(19),
            max_events: 50_000_000,
        },
        _ => RunLimits {
            max_sim_time: SimDuration::from_secs(120),
            max_events: 100_000_000,
        },
    };
    let hosts = match p {
        Protocol::BaselineSingle | Protocol::BaselineLocal => 1,
        _ => 2,
    };
    run_counting(p, &cfg, SimConfig::paper(hosts), limits)
}

#[test]
fn every_networked_protocol_except_p3_finishes() {
    for p in [
        Protocol::P1,
        Protocol::P2,
        Protocol::P3Hysteresis(10_000),
        Protocol::P4,
        Protocol::P5,
    ] {
        let m = run(p);
        assert!(m.finished, "{} did not finish:\n{m}", m.label);
        assert_eq!(m.additions, 128, "{}", m.label);
    }
}

#[test]
fn figure_6_protocol_3_does_not_finish() {
    // "The whole process is degenerative, and in the end it is almost
    // impossible for any work to be done at all."
    let m = run(Protocol::P3);
    assert!(!m.finished, "protocol 3 should blow the time budget:\n{m}");
}

#[test]
fn wall_clock_ordering_matches_paper() {
    // Paper: P1 (128 s) is the slowest finisher; P5 (57 s) the fastest.
    let p1 = run(Protocol::P1);
    let p2 = run(Protocol::P2);
    let p5 = run(Protocol::P5);
    assert!(
        p1.wall > p2.wall,
        "short pages beat full pages: P1 {} vs P2 {}",
        p1.wall,
        p2.wall
    );
    assert!(
        p2.wall > p5.wall,
        "the final protocol beats spinning: P2 {} vs P5 {}",
        p2.wall,
        p5.wall
    );
}

#[test]
fn network_bytes_ordering_matches_paper() {
    // Per addition: P1 moves a full page (~8.3 kB); P2 a request + short
    // reply (~160 B); P5 one short broadcast (~110 B).
    let p1 = run(Protocol::P1);
    let p2 = run(Protocol::P2);
    let p5 = run(Protocol::P5);
    assert!(p1.bytes_per_addition > 8000.0, "{}", p1.bytes_per_addition);
    assert!(p2.bytes_per_addition < 300.0, "{}", p2.bytes_per_addition);
    assert!(
        p5.bytes_per_addition < p2.bytes_per_addition,
        "no request packets in the final protocol: {} vs {}",
        p5.bytes_per_addition,
        p2.bytes_per_addition
    );
}

#[test]
fn final_protocol_sends_one_packet_per_addition() {
    // "Only one packet was ever sent per increment: the PURGE packet
    // from the host with the writeable page."
    let p5 = run(Protocol::P5);
    let per_addition = p5.net.packets as f64 / p5.additions as f64;
    assert!(
        (0.9..1.2).contains(&per_addition),
        "{per_addition} packets/addition:\n{p5}"
    );
    assert!(
        p5.net.requests <= 4,
        "essentially no request packets: {}",
        p5.net.requests
    );
}

#[test]
fn loss_win_ratio_final_protocol_is_tiny() {
    // Paper: 3 for the final protocol vs hundreds for the spinners.
    let p5 = run(Protocol::P5);
    let p2 = run(Protocol::P2);
    assert!(p5.loss_win_ratio() < 10.0, "{}", p5.loss_win_ratio());
    assert!(
        p2.loss_win_ratio() > 20.0 * p5.loss_win_ratio(),
        "spinning loses orders of magnitude more: P2 {} vs P5 {}",
        p2.loss_win_ratio(),
        p5.loss_win_ratio()
    );
}

#[test]
fn latency_ordering_matches_paper() {
    // Paper: P1 120 ms (worst) ... P5 20 ms (best among finishers'
    // blocking protocols).
    let p1 = run(Protocol::P1);
    let p2 = run(Protocol::P2);
    let p5 = run(Protocol::P5);
    assert!(
        p1.avg_latency > p2.avg_latency,
        "P1 {} vs P2 {}",
        p1.avg_latency,
        p2.avg_latency
    );
    assert!(
        p2.avg_latency > p5.avg_latency,
        "P2 {} vs P5 {}",
        p2.avg_latency,
        p5.avg_latency
    );
}

#[test]
fn user_time_final_protocol_is_tiny() {
    // Paper: "User time dropped to below one second" (from 3–19 s).
    let p5 = run(Protocol::P5);
    let p2 = run(Protocol::P2);
    assert!(
        p5.user.as_secs_f64() * 20.0 < p2.user.as_secs_f64(),
        "P5 user {} vs P2 user {}",
        p5.user,
        p2.user
    );
}

#[test]
fn hysteresis_rescues_protocol_3() {
    // Figure 6 → Figure 7: with hysteresis "the program would at least
    // run".
    let p3 = run(Protocol::P3);
    let p3h = run(Protocol::P3Hysteresis(10_000));
    assert!(!p3.finished);
    assert!(p3h.finished);
}

#[test]
fn protocol_4_pays_context_switches() {
    // Paper figure 8: 10 context switches per addition vs 4–5 for the
    // others — the single-page data-driven hybrid churns the scheduler.
    let p4 = run(Protocol::P4);
    let p2 = run(Protocol::P2);
    assert!(
        p4.ctx_per_addition > p2.ctx_per_addition,
        "P4 {} vs P2 {}",
        p4.ctx_per_addition,
        p2.ctx_per_addition
    );
}

#[test]
fn baselines_match_paper_calibration() {
    let single = run(Protocol::BaselineSingle);
    assert!(single.finished);
    // 128 increments at ~52 µs each ≈ 6.7 ms.
    let ms = single.wall.as_millis_f64();
    assert!((4.0..12.0).contains(&ms), "{ms} ms");

    let local = run(Protocol::BaselineLocal);
    assert!(local.finished);
    // 128 quantum rotations at ~75 ms ≈ 9.6 s.
    let s = local.wall.as_secs_f64();
    assert!((6.0..14.0).contains(&s), "{s} s");
    assert_eq!(local.net.packets, 0, "local run must not touch the network");
}
