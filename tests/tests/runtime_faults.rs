//! Runtime fault-injection parity: the simulator's scripted
//! [`FabricEvent`] vocabulary driven against live bridge threads.
//!
//! Each test exercises one leg of the runtime fault plane
//! (`mether_runtime::Cluster`):
//!
//! * `LinkDown` severs one (device, segment) attachment at the endpoint
//!   level — and, being *cluster* state rather than thread state,
//!   survives a `restart_bridge` of the device, exactly like the
//!   simulator's semantics (a revived device re-severs its dead
//!   attachments before its first hello).
//! * Killing the elected root of a redundant ring leaves a measurable,
//!   **finite** reconvergence stall ([`Cluster::fabric_stall`]): the
//!   wall-clock window from the kill to the first data frame forwarded
//!   by a re-elected device — the runtime twin of the simulator's
//!   stall probe.
//! * A [`FaultPlan`] replays a scripted timeline against the cluster in
//!   real time, through the same `apply_fabric_event` entry point the
//!   tests above use directly.

use mether_core::{MapMode, PageId, PageLength, VAddr, View};
use mether_net::bridge::FabricConfig;
use mether_net::{ElectionMode, FabricEvent};
use mether_runtime::{Cluster, ClusterConfig, FaultPlan};
use std::time::{Duration, Instant};

/// Demand-fetches `addr` fresh (purge first) until it reads `want`,
/// panicking after `secs` seconds.
fn read_fresh(c: &Cluster, node: usize, page: PageId, addr: VAddr, want: u32, secs: u64) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        c.node(node)
            .purge(page, MapMode::ReadOnly, PageLength::Short)
            .unwrap();
        match c
            .node(node)
            .read_u32_timeout(addr, MapMode::ReadOnly, Duration::from_millis(250))
        {
            Ok(v) if v == want => return,
            Ok(_) | Err(_) => assert!(
                Instant::now() < deadline,
                "node {node} never saw {want} through the fabric"
            ),
        }
    }
}

/// True once a fresh demand fetch of `addr` times out — the link (or
/// fabric) is effectively severed for `node`.
fn is_partitioned(c: &Cluster, node: usize, page: PageId, addr: VAddr) -> bool {
    c.node(node)
        .purge(page, MapMode::ReadOnly, PageLength::Short)
        .unwrap();
    matches!(
        c.node(node)
            .read_u32_timeout(addr, MapMode::ReadOnly, Duration::from_millis(250)),
        Err(mether_core::Error::Timeout)
    )
}

#[test]
fn link_down_survives_bridge_restart() {
    // Star(2), static election: device 0 is the only path between the
    // segments. Severing its segment-1 attachment partitions the
    // cluster; a kill + revive of the device must NOT resurrect the
    // link (lost links are cluster state); only link_up heals it.
    let mut c = Cluster::new(ClusterConfig::segmented(4, 2)).unwrap();
    let page = PageId::new(0);
    c.node(0).create_owned(page);
    let addr = VAddr::new(page, View::short_demand(), 0).unwrap();
    c.node(0).write_u32(addr, 21).unwrap();
    read_fresh(&c, 2, page, addr, 21, 10);

    assert!(c.link_down(0, 1), "live link severed");
    assert!(!c.link_down(0, 1), "second severing is a no-op");
    assert!(is_partitioned(&c, 2, page, addr), "link down partitions");

    // Kill and revive the device: the revived policy must re-sever the
    // dead attachment before its first hello.
    assert!(c.stop_bridge(0));
    assert!(c.restart_bridge(0));
    // Give the revived thread time to (wrongly) start forwarding.
    std::thread::sleep(Duration::from_millis(150));
    assert!(
        is_partitioned(&c, 2, page, addr),
        "LinkDown must survive restart_bridge"
    );

    assert!(c.link_up(0, 1), "downed link revived");
    assert!(!c.link_up(0, 1), "second revival is a no-op");
    c.node(0).write_u32(addr, 22).unwrap();
    read_fresh(&c, 2, page, addr, 22, 10);

    // The timeline remembers the whole injected history, in order.
    let evs: Vec<FabricEvent> = c.fabric_timeline().into_iter().map(|(_, ev)| ev).collect();
    assert_eq!(
        evs,
        vec![
            FabricEvent::LinkDown {
                device: 0,
                segment: 1
            },
            FabricEvent::BridgeDown(0),
            FabricEvent::BridgeUp(0),
            FabricEvent::LinkUp {
                device: 0,
                segment: 1
            },
        ]
    );
    c.shutdown();
}

#[test]
fn ring_root_kill_measures_finite_reconvergence_stall() {
    // 8 nodes over a 4-segment ring under live election — the runtime
    // twin of the simulator's ring-failover stall probe (8.53 ms of
    // simulated unreachability there). Killing the elected root arms
    // the probe; the first data frame forwarded by a device whose
    // election epoch advanced past its pre-kill snapshot resolves it.
    // Jitter-tolerant cadence, not `ElectionMode::live()`: the default
    // 1 ms/4 ms is virtual-time tuned, and on a loaded box a 4 ms
    // scheduling gap spuriously "kills" a live neighbour — which, on a
    // cyclic fabric, can unblock the redundant path into a forwarding
    // loop. The real kill below is still detected, just ~100 ms later.
    let fabric = FabricConfig::ring(4).with_election(ElectionMode::Live {
        hello_interval: mether_net::SimDuration::from_millis(10),
        hello_timeout: mether_net::SimDuration::from_millis(100),
        hold_down: mether_net::SimDuration::from_millis(50),
    });
    let mut c = Cluster::new(ClusterConfig::fabric(8, fabric)).unwrap();
    let page = PageId::new(0);
    c.node(0).create_owned(page);
    let addr = VAddr::new(page, View::short_demand(), 0).unwrap();
    c.node(0).write_u32(addr, 7).unwrap();
    read_fresh(&c, 2, page, addr, 7, 20);
    assert_eq!(c.fabric_stall(), None, "probe unarmed before any kill");

    // Kill device 0 (the root at uniform priorities) and keep reading
    // across the fabric: the reads stall through reconvergence, then
    // go the long way round — and the first such crossing stamps the
    // stall.
    assert!(c.stop_bridge(0));
    c.node(0).write_u32(addr, 8).unwrap();
    read_fresh(&c, 2, page, addr, 8, 30);
    let stall = c
        .fabric_stall()
        .expect("a re-elected device forwarded data");
    assert!(
        stall > Duration::ZERO && stall < Duration::from_secs(30),
        "stall must be finite and measured: {stall:?}"
    );
    assert!(
        c.fabric_reconvergences() > 0,
        "the survivors re-elected around the corpse"
    );
    // The telemetry surface: some surviving device carried the data.
    let carried: u64 = (1..c.bridge_count())
        .map(|d| c.bridge_stats(d).forwarded)
        .sum();
    assert!(carried > 0, "surviving devices forwarded the detour");
    c.shutdown();
}

#[test]
fn fault_plan_replays_a_scripted_timeline() {
    // The scripted path end to end: kill device 0 at 50 ms, revive it
    // at 250 ms, all from a FaultPlan thread while the main thread
    // drives traffic. Events against already-dead devices don't count.
    let mut c = Cluster::new(ClusterConfig::segmented(4, 2)).unwrap();
    let page = PageId::new(0);
    c.node(0).create_owned(page);
    let addr = VAddr::new(page, View::short_demand(), 0).unwrap();
    c.node(0).write_u32(addr, 5).unwrap();
    read_fresh(&c, 2, page, addr, 5, 10);

    let plan = FaultPlan::new()
        .at(Duration::from_millis(50), FabricEvent::BridgeDown(0))
        .at(
            Duration::from_millis(60),
            FabricEvent::BridgeDown(0), // no-op: already dead
        )
        .at(Duration::from_millis(250), FabricEvent::BridgeUp(0));
    let applied = plan.run(&c);
    assert_eq!(applied, 2, "the duplicate kill is a no-op");

    // After the plan the fabric is healed: cross-segment reads work.
    c.node(0).write_u32(addr, 6).unwrap();
    read_fresh(&c, 2, page, addr, 6, 10);
    let evs: Vec<FabricEvent> = c.fabric_timeline().into_iter().map(|(_, ev)| ev).collect();
    assert_eq!(
        evs,
        vec![FabricEvent::BridgeDown(0), FabricEvent::BridgeUp(0)],
        "no-op events leave no timeline entry"
    );
    c.shutdown();
}

#[test]
fn runtime_loss_is_retargetable_at_runtime() {
    // Cluster::set_loss makes LanConfig::loss live: a clean wire
    // drops nothing, then a 100%-lossy phase drops everything (the
    // demand fetch times out), then clean again recovers.
    let mut c = Cluster::new(ClusterConfig::segmented(4, 2)).unwrap();
    let page = PageId::new(0);
    c.node(0).create_owned(page);
    let addr = VAddr::new(page, View::short_demand(), 0).unwrap();
    c.node(0).write_u32(addr, 1).unwrap();
    read_fresh(&c, 2, page, addr, 1, 10);

    c.set_loss(0, 1.0);
    c.set_loss(1, 1.0);
    assert!(
        is_partitioned(&c, 2, page, addr),
        "a fully lossy wire delivers nothing"
    );
    c.set_loss(0, 0.0);
    c.set_loss(1, 0.0);
    c.node(0).write_u32(addr, 2).unwrap();
    read_fresh(&c, 2, page, addr, 2, 10);
    let lost = c.net_stats().lost;
    assert!(lost > 0, "the lossy phase dropped frames: {lost}");
    c.shutdown();
}
