//! Property-based protocol invariants: random operation soups over a
//! set of page tables connected by an in-order broadcast "wire".
//!
//! The central safety property of Mether is "there is only ever one
//! consistent copy of a page". We drive N host tables with arbitrary
//! sequences of accesses, purges, locks, and unlocks, delivering every
//! emitted packet to every other table in order, and assert after every
//! step that:
//!
//! * at most one host holds the consistent copy of each page;
//! * the consistent copy never vanishes (some host can always supply it
//!   or a transfer is in flight);
//! * generations never regress on any host;
//! * a host that observes `Ready` for a writeable access really is the
//!   holder.

use mether_core::{
    AccessOutcome, Effect, MapMode, MetherConfig, Packet, PageId, PageLength, PageTable, View,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Access {
        host: usize,
        page: u32,
        short: bool,
        data_driven: bool,
        writeable: bool,
    },
    PurgeRo {
        host: usize,
        page: u32,
    },
    PurgeRw {
        host: usize,
        page: u32,
        short: bool,
    },
    Lock {
        host: usize,
        page: u32,
    },
    Unlock {
        host: usize,
        page: u32,
    },
}

fn op_strategy(hosts: usize, pages: u32) -> impl Strategy<Value = Op> {
    let h = 0..hosts;
    let p = 0..pages;
    prop_oneof![
        (
            h.clone(),
            p.clone(),
            any::<bool>(),
            any::<bool>(),
            any::<bool>()
        )
            .prop_map(|(host, page, short, data_driven, writeable)| Op::Access {
                host,
                page,
                short,
                data_driven,
                writeable
            }),
        (h.clone(), p.clone()).prop_map(|(host, page)| Op::PurgeRo { host, page }),
        (h.clone(), p.clone(), any::<bool>()).prop_map(|(host, page, short)| Op::PurgeRw {
            host,
            page,
            short
        }),
        (h.clone(), p.clone()).prop_map(|(host, page)| Op::Lock { host, page }),
        (h, p).prop_map(|(host, page)| Op::Unlock { host, page }),
    ]
}

struct World {
    tables: Vec<PageTable>,
    pages: u32,
    /// Packets in flight (in-order broadcast wire).
    wire: std::collections::VecDeque<Packet>,
    waiter: u64,
}

impl World {
    fn new(hosts: usize, pages: u32) -> World {
        let mut tables: Vec<PageTable> = (0..hosts)
            .map(|i| PageTable::new(mether_core::HostId(i as u16), MetherConfig::new()))
            .collect();
        // Every page starts consistent on host 0.
        for p in 0..pages {
            tables[0].create_owned(PageId::new(p));
        }
        World {
            tables,
            pages,
            wire: Default::default(),
            waiter: 0,
        }
    }

    fn absorb(&mut self, effects: Vec<Effect>, host: usize) {
        for fx in effects {
            match fx {
                Effect::Send(pkt) => self.wire.push_back(pkt),
                Effect::ServerPurge(page) => {
                    // Act as the host's server immediately: broadcast and
                    // DO-PURGE.
                    if let Ok(pkt) =
                        self.tables[host].server_purge_broadcast(page, PageLength::Short)
                    {
                        self.wire.push_back(pkt);
                    }
                    let mut fx2 = Vec::new();
                    self.tables[host].do_purge(page, &mut fx2);
                    // Wake effects need no action here: retries are
                    // driven by the op generator.
                }
                Effect::Wake(_) | Effect::WakeAll(_) | Effect::ConsistentArrived(_) => {}
            }
        }
    }

    /// Delivers every queued packet to every other host, collecting any
    /// further sends (replies) until the wire drains.
    fn drain_wire(&mut self) {
        let mut budget = 10_000;
        while let Some(pkt) = self.wire.pop_front() {
            budget -= 1;
            assert!(budget > 0, "wire never drains: protocol livelock");
            for h in 0..self.tables.len() {
                let mut fx = Vec::new();
                self.tables[h].handle_packet(&pkt, &mut fx);
                self.absorb(fx, h);
            }
        }
    }

    fn check_invariants(&self) {
        for p in 0..self.pages {
            let page = PageId::new(p);
            let holders: Vec<usize> = (0..self.tables.len())
                .filter(|&h| self.tables[h].is_consistent_holder(page))
                .collect();
            assert!(
                holders.len() <= 1,
                "page {page}: multiple consistent holders {holders:?}"
            );
            // With the wire drained, the consistent copy must exist
            // somewhere (transfers are atomic at this granularity).
            assert_eq!(
                holders.len(),
                1,
                "page {page}: consistent copy vanished with an empty wire"
            );
        }
    }

    fn step(&mut self, op: &Op) {
        self.waiter += 1;
        let w = self.waiter;
        match *op {
            Op::Access {
                host,
                page,
                short,
                data_driven,
                writeable,
            } => {
                let view = View::new(
                    if short {
                        mether_core::PageLength::Short
                    } else {
                        mether_core::PageLength::Full
                    },
                    if data_driven && !writeable {
                        mether_core::DriveMode::Data
                    } else {
                        mether_core::DriveMode::Demand
                    },
                );
                let mode = if writeable {
                    MapMode::Writeable
                } else {
                    MapMode::ReadOnly
                };
                let mut fx = Vec::new();
                let out = self.tables[host]
                    .access(PageId::new(page), view, mode, w, &mut fx)
                    .unwrap();
                if out == AccessOutcome::Ready && writeable {
                    assert!(
                        self.tables[host].is_consistent_holder(PageId::new(page)),
                        "Ready writeable access on a non-holder"
                    );
                }
                self.absorb(fx, host);
            }
            Op::PurgeRo { host, page } => {
                let mut fx = Vec::new();
                self.tables[host]
                    .purge(PageId::new(page), MapMode::ReadOnly, w, &mut fx)
                    .unwrap();
                self.absorb(fx, host);
            }
            Op::PurgeRw { host, page, short } => {
                let mut fx = Vec::new();
                let length = if short {
                    PageLength::Short
                } else {
                    PageLength::Full
                };
                match self.tables[host].purge(PageId::new(page), MapMode::Writeable, w, &mut fx) {
                    Ok(_) => {
                        // Route ServerPurge with the chosen length.
                        for f in &mut fx {
                            if let Effect::ServerPurge(_) = f {
                                if let Ok(pkt) = self.tables[host]
                                    .server_purge_broadcast(PageId::new(page), length)
                                {
                                    self.wire.push_back(pkt);
                                }
                                let mut fx2 = Vec::new();
                                self.tables[host].do_purge(PageId::new(page), &mut fx2);
                            }
                        }
                        fx.retain(|f| !matches!(f, Effect::ServerPurge(_)));
                        self.absorb(fx, host);
                    }
                    Err(mether_core::Error::NotConsistentHolder { .. }) => {}
                    Err(e) => panic!("unexpected purge error: {e}"),
                }
            }
            Op::Lock { host, page } => {
                let _ = self.tables[host].lock(PageId::new(page), PageLength::Short);
            }
            Op::Unlock { host, page } => {
                let mut fx = Vec::new();
                self.tables[host].unlock(PageId::new(page), &mut fx);
                self.absorb(fx, host);
            }
        }
        self.drain_wire();
        self.check_invariants();
    }

    fn generations(&self) -> Vec<u64> {
        (0..self.pages)
            .flat_map(|p| {
                self.tables
                    .iter()
                    .map(move |t| t.generation(PageId::new(p)).0)
            })
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn single_consistent_holder_under_random_ops(
        ops in proptest::collection::vec(op_strategy(3, 2), 1..120)
    ) {
        let mut world = World::new(3, 2);
        for op in &ops {
            world.step(op);
        }
    }

    #[test]
    fn generations_never_regress(
        ops in proptest::collection::vec(op_strategy(2, 1), 1..80)
    ) {
        let mut world = World::new(2, 1);
        let mut prev = world.generations();
        for op in &ops {
            world.step(op);
            let cur = world.generations();
            for (i, (&a, &b)) in prev.iter().zip(&cur).enumerate() {
                // A host's view of a page's generation may only move
                // forward, except when it drops its copy entirely (a
                // purge resets its local knowledge to whatever arrives
                // next — which the monotonic-install rule keeps ≥ 0).
                if b < a {
                    // Allowed only immediately after a local RO purge
                    // dropped the copy: then generation stays, actually.
                    // Treat any regression as failure.
                    panic!("generation regressed at slot {i}: {a} -> {b} after {op:?}");
                }
            }
            prev = cur;
        }
    }

    #[test]
    fn four_hosts_three_pages_soup(
        ops in proptest::collection::vec(op_strategy(4, 3), 1..60)
    ) {
        let mut world = World::new(4, 3);
        for op in &ops {
            world.step(op);
        }
    }
}
