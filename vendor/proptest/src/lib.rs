//! Vendored property-testing mini-framework (offline stand-in for the
//! `proptest` crate).
//!
//! Implements the subset of the proptest API this workspace uses:
//! `proptest!` test blocks with `arg in strategy` bindings, integer-range
//! and `any::<T>()` strategies, tuples, `prop_map`, `prop_oneof!`,
//! `collection::vec`, `option::of`, and the `prop_assert*` family.
//! Generation is deterministic per test (seeded from the test's module
//! path), cases run without shrinking — a failing case prints its inputs
//! instead.

#![forbid(unsafe_code)]

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it is not counted.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Deterministic per-test generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test identifier.
    pub fn for_test(name: &str) -> TestRng {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        TestRng {
            state: h.finish() ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type generated.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        strategy::Map { inner: self, f }
    }
}

/// Strategy combinators and primitive strategies.
pub mod strategy {
    use super::{Strategy, TestRng};

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erases a strategy for use in [`Union`].
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Uniform choice among several strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms`.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )+};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// See [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n =
                self.len.start + rng.below((self.len.end - self.len.start).max(1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// An `Option` that is `Some` about half the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// See [`OptionStrategy`].
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// The usual proptest imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Chooses uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "{} ({:?} vs {:?})",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "{} (both {:?})",
                format!($($fmt)+),
                l
            )));
        }
    }};
}

/// Discards the current case (not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn` runs its body for many generated
/// inputs bound by `name in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )+ ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut executed: u32 = 0;
            let mut attempts: u32 = 0;
            while executed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(50).max(500),
                    "too many cases rejected by prop_assume!"
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let __inputs =
                    format!(concat!($(stringify!($arg), " = {:?}; "),+), $(&$arg),+);
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => executed += 1,
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property failed: {msg}\n  inputs: {}", __inputs)
                    }
                }
            }
        }
    )+};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot(u8),
        Pair(u8, bool),
    }

    fn shape() -> impl Strategy<Value = Shape> {
        prop_oneof![
            (0u8..16).prop_map(Shape::Dot),
            (0u8..4, any::<bool>()).prop_map(|(a, b)| Shape::Pair(a, b)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn oneof_produces_both_arms(s in shape()) {
            match s {
                Shape::Dot(d) => prop_assert!(d < 16),
                Shape::Pair(a, _) => prop_assert!(a < 4),
            }
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn options_are_sometimes_none(o in crate::option::of(0u8..3)) {
            if let Some(v) = o {
                prop_assert!(v < 3);
            }
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_reports_inputs() {
        crate::__proptest_impl! {
            (crate::ProptestConfig::with_cases(4));
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200);
            }
        }
        always_fails();
    }
}
