//! Vendored stand-in for the `bytes` crate (the build environment has no
//! network access to crates.io).
//!
//! Only the surface the Mether workspace uses is provided, but the core
//! property the workspace relies on is faithful to the real crate:
//! [`Bytes`] is a cheaply cloneable, reference-counted view into shared
//! storage, and [`Bytes::slice`] is **zero-copy** — it returns a new view
//! into the same allocation. This is what makes the Mether page-data path
//! allocation-free: one decoded datagram can hand its payload to N
//! snooping hosts without any of them copying a byte.

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable view into reference-counted storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation shared).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies `src` into fresh owned storage.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes::from(src.to_vec())
    }

    /// Wraps a static slice. (Copies here — the shim has no vtable
    /// machinery — but the call sites that use this are cold.)
    pub fn from_static(src: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(src)
    }

    /// Number of accessible bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A zero-copy sub-view of this buffer: the returned [`Bytes`] shares
    /// the same underlying allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of range 0..{}",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            off: self.off + start,
            len: end - start,
        }
    }

    /// The view as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    /// True if `self` and `other` are views into the same allocation.
    /// Used by zero-copy tests to assert that no copy happened.
    pub fn shares_storage_with(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Attempts to reclaim the underlying vector without copying.
    /// Succeeds only when this view covers the whole allocation and no
    /// other view shares it; otherwise returns `self` unchanged. (The
    /// real crate's analogue is `Bytes::try_into_mut`.)
    pub fn try_unique(self) -> Result<Vec<u8>, Bytes> {
        if self.off != 0 || self.len != self.data.len() {
            return Err(self);
        }
        let off = self.off;
        let len = self.len;
        Arc::try_unwrap(self.data).map_err(|data| Bytes { data, off, len })
    }
}

impl From<Vec<u8>> for Bytes {
    /// Takes ownership of `v` without copying.
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            data: Arc::new(v),
            off: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Bytes {
        Bytes::copy_from_slice(src)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(16) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.len > 16 {
            write!(f, "..{} bytes", self.len)?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer used to build datagrams, frozen into [`Bytes`]
/// without copying.
#[derive(Debug, Default)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty builder with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

/// Cursor-style reads over a byte source. Implemented for `&[u8]`, where
/// each `get_*` consumes from the front of the slice (as in the real
/// crate). All multi-byte reads are big-endian.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consumes one byte.
    fn get_u8(&mut self) -> u8;
    /// Consumes a big-endian `u16`.
    fn get_u16(&mut self) -> u16;
    /// Consumes a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Consumes a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self[..2].try_into().unwrap());
        *self = &self[2..];
        v
    }
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self[..4].try_into().unwrap());
        *self = &self[4..];
        v
    }
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self[..8].try_into().unwrap());
        *self = &self[8..];
        v
    }
}

/// Writes into a growable buffer. All multi-byte writes are big-endian.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.vec.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.vec.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.vec.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.vec.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_zero_copy_slice() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u16(0x4d45);
        b.put_u8(2);
        b.put_slice(&[1, 2, 3]);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 6);
        let tail = frozen.slice(3..6);
        assert_eq!(&tail[..], &[1, 2, 3]);
        assert!(tail.shares_storage_with(&frozen), "slice must not copy");
    }

    #[test]
    fn buf_reads_consume() {
        let data = [0x4du8, 0x45, 7];
        let mut cur: &[u8] = &data;
        assert_eq!(cur.remaining(), 3);
        assert_eq!(cur.get_u16(), 0x4d45);
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn equality_is_by_content() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert!(!a.shares_storage_with(&b));
    }
}
