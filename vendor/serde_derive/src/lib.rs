//! Vendored no-op `serde` derive macros.
//!
//! The workspace annotates types with `#[derive(Serialize, Deserialize)]`
//! for forward compatibility, but nothing in the build actually
//! serialises through serde (the offline environment has no crates.io
//! access, and the repro binaries print their own table formats). These
//! derives therefore expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
