//! Vendored micro-benchmark harness (offline stand-in for `criterion`).
//!
//! Implements the criterion API shape the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`,
//! `Throughput`) with a simple but honest methodology: a warm-up pass, then
//! timed batches until a wall-clock budget is spent, reporting the mean
//! ns/iteration of the best half of the batches (trims scheduler noise).
//!
//! Results print as human-readable lines plus one machine-readable
//! `[bench-json]` line each, which `BENCH_baseline.json` snapshots are
//! collected from.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Declared throughput of a benchmark, echoed in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to the benchmark closure; time work with [`Bencher::iter`].
pub struct Bencher {
    ns_per_iter: f64,
    iters: u64,
}

/// True when the binary was invoked with `--test` (cargo forwards
/// everything after `--` to the bench binary): smoke mode, where each
/// benchmark body runs exactly once with no warm-up or timing. CI uses
/// this to catch bench rot (benches that no longer compile or panic)
/// without paying for a measurement run.
fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

impl Bencher {
    /// Times `f`, recording the mean cost of one call. In `--test` smoke
    /// mode, runs `f` once and records nothing.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if smoke_mode() {
            std::hint::black_box(f());
            self.ns_per_iter = 0.0;
            self.iters = 1;
            return;
        }
        // Warm-up: one call always; keep warming until ~20 ms has passed
        // or a handful of calls have run.
        let warm_budget = Duration::from_millis(20);
        let warm_start = Instant::now();
        let mut warm_calls = 0u32;
        while warm_calls == 0 || (warm_start.elapsed() < warm_budget && warm_calls < 1000) {
            std::hint::black_box(f());
            warm_calls += 1;
        }
        // Choose a batch size aiming for ~5 ms per batch.
        let probe_start = Instant::now();
        std::hint::black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(20));
        let batch =
            (Duration::from_millis(5).as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;

        let budget = Duration::from_millis(200);
        let run_start = Instant::now();
        let mut samples: Vec<f64> = Vec::new();
        let mut total_iters = 0u64;
        while run_start.elapsed() < budget && samples.len() < 200 {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed().as_nanos() as f64;
            samples.push(elapsed / batch as f64);
            total_iters += batch;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let keep = (samples.len() / 2).max(1);
        self.ns_per_iter = samples[..keep].iter().sum::<f64>() / keep as f64;
        self.iters = total_iters;
    }
}

fn report(group: Option<&str>, name: &str, throughput: Option<Throughput>, b: &Bencher) {
    let full = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    if smoke_mode() {
        println!("{full:<44} smoke ok (1 iteration)");
        return;
    }
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if b.ns_per_iter > 0.0 => {
            format!(
                " ({:.1} MiB/s)",
                n as f64 / b.ns_per_iter * 1e9 / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(n)) if b.ns_per_iter > 0.0 => {
            format!(" ({:.0} elem/s)", n as f64 / b.ns_per_iter * 1e9)
        }
        _ => String::new(),
    };
    println!(
        "{full:<44} {:>14.1} ns/iter{rate}  [{} iters]",
        b.ns_per_iter, b.iters
    );
    println!(
        "[bench-json] {{\"name\":\"{full}\",\"ns_per_iter\":{:.1},\"iters\":{}}}",
        b.ns_per_iter, b.iters
    );
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(None, name.as_ref(), None, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by wall-clock
    /// budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares the throughput of subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(Some(&self.name), name.as_ref(), self.throughput, &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Arguments (e.g. `--bench` from cargo) are accepted and ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(64));
        g.bench_function("push", |b| {
            let mut v = Vec::new();
            b.iter(|| {
                v.push(1u8);
                v.len()
            })
        });
        g.finish();
    }
}
