//! Vendored stand-in for the `rand` crate (offline environment).
//!
//! Provides exactly the surface the Mether workspace uses: a seedable
//! deterministic generator (`rngs::StdRng`) and `Rng::gen::<f64>()` for
//! loss injection. The generator is SplitMix64 — statistically more than
//! adequate for uniform loss sampling, and fully deterministic from the
//! seed, which the simulator requires.

#![forbid(unsafe_code)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, matching the `rand` API shape.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from an [`RngCore`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)`, using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_uniform_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 10_000;
        let mut below_third = 0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            if x < 0.3 {
                below_third += 1;
            }
        }
        let rate = below_third as f64 / n as f64;
        assert!((0.28..0.32).contains(&rate), "observed {rate}");
    }
}
