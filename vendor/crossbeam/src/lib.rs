//! Vendored stand-in for `crossbeam` (offline environment): an unbounded
//! MPMC channel with the `crossbeam-channel` API shape.
//!
//! Unlike `std::sync::mpsc`, the [`channel::Receiver`] here is `Sync`, so
//! an endpoint can be shared behind an `Arc` and polled from any thread —
//! the property `mether-net`'s LAN endpoints rely on.

#![forbid(unsafe_code)]

/// Unbounded MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Errors from [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Errors from [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message waiting.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if all receivers dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared.queue.lock().unwrap().push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Sender")
        }
    }

    /// The receiving half; `Sync`, shareable behind an `Arc`.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.shared.senders.load(Ordering::Acquire) == 0
        }

        /// Blocks until a message arrives or all senders drop.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when every sender is gone and the queue is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap();
            }
        }

        /// As [`Receiver::recv`], giving up after `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] on expiry,
        /// [`RecvTimeoutError::Disconnected`] when every sender is gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self.shared.ready.wait_timeout(q, left).unwrap();
                q = guard;
                if res.timed_out() && q.is_empty() {
                    if self.disconnected() {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when every sender is gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.disconnected() {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Receiver")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn timeout_on_empty() {
        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn disconnect_observed_across_threads() {
        let (tx, rx) = channel::unbounded::<u8>();
        let t = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(t.join().unwrap(), Err(channel::RecvError));
    }

    #[test]
    fn send_fails_without_receiver() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn receiver_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<channel::Receiver<u8>>();
    }
}
