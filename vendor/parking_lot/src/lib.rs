//! Vendored stand-in for `parking_lot` built on `std::sync` (the offline
//! environment cannot fetch crates.io).
//!
//! API-compatible with the subset the workspace uses: poison-free
//! `Mutex::lock`, and a `Condvar` whose `wait`/`wait_until` take
//! `&mut MutexGuard`. Poisoning is handled by unwrapping: a panic while
//! holding one of these locks aborts the affected test anyway.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds an `Option` internally so [`Condvar::wait`] can move the std
/// guard out and back without releasing the borrow.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// Outcome of a timed wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
    /// Set when a notification raced a timed wait; lets `wait_until`
    /// distinguish spurious timeouts less pessimistically. Best-effort.
    notified: AtomicBool,
}

impl Condvar {
    /// A fresh condition variable.
    pub fn new() -> Condvar {
        Condvar::default()
    }

    /// Releases the guard's lock, waits for a notification, reacquires.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(inner);
    }

    /// As [`Condvar::wait`], but gives up at `deadline`.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        let inner = guard.guard.take().expect("guard present");
        let (inner, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(inner);
        let _ = self.notified.swap(false, Ordering::Relaxed);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.notified.store(true, Ordering::Relaxed);
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.notified.store(true, Ordering::Relaxed);
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(20));
        assert!(res.timed_out());
    }
}
