//! Vendored facade for `serde` (offline stand-in).
//!
//! Re-exports the no-op derive macros so `use serde::{Deserialize,
//! Serialize};` + `#[derive(Serialize, Deserialize)]` compile unchanged.
//! No serialisation machinery is provided — nothing in this workspace
//! serialises through serde at runtime.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
